//! The trait-based stages a [`crate::ReadPipeline`] is composed from.
//!
//! * [`ScheduleSource`] — produces a [`ComputeSchedule`] for a layer's
//!   weight matrix (implemented by [`Baseline`], [`read_core::ReadOptimizer`]
//!   and the paper-set [`Algorithm`] enum).
//! * [`ErrorModel`] — turns a triggered-depth histogram into a TER estimate
//!   at an operating condition and a TER into an activation BER.  Three
//!   implementations cover the paper's error-analysis modes:
//!   [`DelayErrorModel`] (closed-form analytic, the default),
//!   [`MonteCarloErrorModel`] (seeded sampling with mean/stddev TER
//!   aggregation) and [`VariationErrorModel`] (per-PE process variation of
//!   one die).  All three delegate to the [`timing::TimingAnalysis`]
//!   engines, so no consumer ever hand-wires a
//!   [`timing::DynamicTimingAnalyzer`].
//! * [`Evaluator`] — measures model accuracy under per-layer BERs
//!   (implemented by [`TopKEvaluator`] wrapping
//!   [`qnn::fault::evaluate_topk`]).
//!
//! Custom heuristics plug in by implementing the same traits.

use accel_sim::{
    ArrayConfig, ComputeSchedule, Dataflow, GemmProblem, Matrix, NullObserver, SimOptions,
};
use dataflow_sim::{run_dataflow, DataflowReport, EngineConfig};
use qnn::fault::{evaluate_topk, Accuracy, FaultConfig, FlipModel};
use qnn::{Dataset, Model};
use read_core::{ClusteringMode, ReadConfig, ReadOptimizer, SortCriterion};
use timing::{
    ber_from_ter, AnalyticAnalysis, DelayModel, DepthHistogram, MonteCarloAnalysis,
    OperatingCondition, OperatingCorner, PeOffsets, TerEstimate, TimingAnalysis, Variation,
};

use crate::error::PipelineError;

/// FNV-1a over a byte stream: the stable fingerprint hash behind every
/// cache key and content-addressed store entry.  Deterministic across runs
/// and processes — on-disk artifact stores ([`crate::DiskStore`]) persist
/// keys derived from it, so the function is part of the store-format
/// contract.
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn fingerprint_str(s: &str) -> u64 {
    fnv1a(s.bytes())
}

/// Stage 1: turns a layer's weight matrix into a compute schedule.
pub trait ScheduleSource: Send + Sync {
    /// Stable display name; also used to key experiment rows, so two sources
    /// in one pipeline must not share a name.
    fn name(&self) -> String;

    /// Cache fingerprint: must change whenever the produced schedules could
    /// change (configuration, seed, ...).  The default hashes [`Self::name`],
    /// which is sufficient when the name encodes the full configuration.
    fn fingerprint(&self) -> u64 {
        fingerprint_str(&self.name())
    }

    /// Produces the schedule for a `reduction_len x num_channels` weight
    /// matrix on an array with `array_cols` columns.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Schedule`] when the source rejects the
    /// matrix (e.g. empty weights).
    fn schedule(
        &self,
        weights: &Matrix<i8>,
        array_cols: usize,
    ) -> Result<ComputeSchedule, PipelineError>;
}

/// The unmodified accelerator order: consecutive column tiles, natural
/// reduction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Baseline;

impl ScheduleSource for Baseline {
    fn name(&self) -> String {
        "baseline".to_string()
    }

    fn schedule(
        &self,
        weights: &Matrix<i8>,
        array_cols: usize,
    ) -> Result<ComputeSchedule, PipelineError> {
        Ok(ComputeSchedule::baseline(
            weights.rows(),
            weights.cols(),
            array_cols,
        ))
    }
}

/// The READ optimizer is itself a schedule source: its name and fingerprint
/// encode the full [`ReadConfig`] (criterion, clustering, metric, iteration
/// cap and seed), so differently-seeded optimizers cache independently.
impl ScheduleSource for ReadOptimizer {
    fn name(&self) -> String {
        let c = self.config();
        format!("{}[{}]", c.clustering.name(), c.criterion)
    }

    fn fingerprint(&self) -> u64 {
        // Debug output covers every config field (all are plain data), so
        // any configuration change — including the seed — changes the key.
        fingerprint_str(&format!("{:?}", self.config()))
    }

    fn schedule(
        &self,
        weights: &Matrix<i8>,
        array_cols: usize,
    ) -> Result<ComputeSchedule, PipelineError> {
        Ok(self.optimize(weights, array_cols)?.to_compute_schedule())
    }
}

/// The algorithm configurations compared throughout the paper's evaluation
/// (Figs. 8, 10 and 11), as a ready-made [`ScheduleSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The unmodified accelerator order.
    Baseline,
    /// Input-channel reordering on consecutive column tiles.
    Reorder(SortCriterion),
    /// Output-channel clustering followed by per-cluster reordering.
    ClusterThenReorder(SortCriterion),
}

impl Algorithm {
    /// The three configurations of Figs. 8, 10 and 11.
    pub fn paper_set() -> [Algorithm; 3] {
        [
            Algorithm::Baseline,
            Algorithm::Reorder(SortCriterion::SignFirst),
            Algorithm::ClusterThenReorder(SortCriterion::SignFirst),
        ]
    }

    /// Display name (inherent mirror of [`ScheduleSource::name`], so
    /// callers need not import the trait).
    pub fn name(&self) -> String {
        ScheduleSource::name(self)
    }

    /// The optimizer configuration this algorithm runs, or `None` for the
    /// baseline.  This is the single place the paper-set configurations are
    /// constructed.
    pub fn read_config(&self) -> Option<ReadConfig> {
        let (criterion, clustering) = match self {
            Algorithm::Baseline => return None,
            Algorithm::Reorder(c) => (*c, ClusteringMode::Direct),
            Algorithm::ClusterThenReorder(c) => (*c, ClusteringMode::ClusterThenReorder),
        };
        Some(ReadConfig {
            criterion,
            clustering,
            ..ReadConfig::default()
        })
    }
}

impl ScheduleSource for Algorithm {
    fn name(&self) -> String {
        match self.read_config() {
            None => Baseline.name(),
            Some(config) => ReadOptimizer::new(config).name(),
        }
    }

    fn fingerprint(&self) -> u64 {
        match self.read_config() {
            None => Baseline.fingerprint(),
            Some(config) => ReadOptimizer::new(config).fingerprint(),
        }
    }

    fn schedule(
        &self,
        weights: &Matrix<i8>,
        array_cols: usize,
    ) -> Result<ComputeSchedule, PipelineError> {
        match self.read_config() {
            None => Baseline.schedule(weights, array_cols),
            Some(config) => ReadOptimizer::new(config).schedule(weights, array_cols),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&ScheduleSource::name(self))
    }
}

/// Stage 2: turns a triggered-depth histogram into error rates.
///
/// The trait is the single seam every TER/BER derivation flows through:
/// analytic, Monte-Carlo and per-PE-variation analysis are all `ErrorModel`
/// implementations, so pipelines (and their reports) swap between them
/// without touching schedule sources, simulation or evaluation.
pub trait ErrorModel: Send + Sync {
    /// Display name of the model.
    fn name(&self) -> String;

    /// Stable configuration fingerprint: must change whenever the estimates
    /// this model produces could change (delay parameters, trial count,
    /// seeds, variation geometry, ...).  Any cache keyed on derived error
    /// rates must include it — the default hashes [`Self::name`], which is
    /// only sufficient when the name encodes the full configuration.
    fn fingerprint(&self) -> u64 {
        fingerprint_str(&self.name())
    }

    /// Full TER estimate (point value plus optional spread) of the recorded
    /// cycles at the given operating condition.
    fn estimate(&self, hist: &DepthHistogram, condition: &OperatingCondition) -> TerEstimate;

    /// Expected MAC-level timing error rate of the recorded cycles at the
    /// given operating condition (the point value of [`Self::estimate`]).
    fn ter(&self, hist: &DepthHistogram, condition: &OperatingCondition) -> f64 {
        self.estimate(hist, condition).ter
    }

    /// Activation-level bit error rate implied by a TER for outputs that
    /// accumulate `macs_per_output` MACs (the paper's Eq. (1)).
    fn ber(&self, ter: f64, macs_per_output: usize) -> f64 {
        ber_from_ter(ter, macs_per_output)
    }

    /// The silicon-variation corner this model evaluates, or `None` at
    /// typical silicon.  Recorded in report rows so a die-specific result is
    /// never mistaken for a population estimate.
    fn corner(&self) -> Option<String> {
        None
    }
}

/// The default error model: the parametric Nangate-15nm-like MAC delay model
/// evaluated over the depth histogram (the same math as
/// [`timing::TerEstimator`], but reusing one simulation pass for any number
/// of corners).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayErrorModel {
    /// The MAC datapath delay model.
    pub delay: DelayModel,
}

impl DelayErrorModel {
    /// Wraps a delay model.
    pub fn new(delay: DelayModel) -> Self {
        DelayErrorModel { delay }
    }
}

impl Default for DelayErrorModel {
    fn default() -> Self {
        DelayErrorModel::new(DelayModel::nangate15_like())
    }
}

impl ErrorModel for DelayErrorModel {
    fn name(&self) -> String {
        "delay-model".to_string()
    }

    fn fingerprint(&self) -> u64 {
        // Debug output covers every delay parameter.
        fingerprint_str(&format!("{self:?}"))
    }

    fn estimate(&self, hist: &DepthHistogram, condition: &OperatingCondition) -> TerEstimate {
        AnalyticAnalysis::new(self.delay).estimate(hist, &OperatingCorner::nominal(*condition))
    }
}

/// Monte-Carlo error model: `trials` seeded sampling realizations of the
/// histogram's error count, aggregated to a mean TER and its **sample**
/// standard deviation (Bessel's `n - 1` correction — see
/// [`TerEstimate::from_trials`] for the contract), surfaced as
/// [`crate::LayerReport::ter_stddev`].
///
/// Estimates are fully deterministic for a fixed `(trials, seed)` — trial
/// `t` derives its RNG stream from `(seed, t)` only — so repeated pipeline
/// runs (serial or parallel) produce byte-identical reports, and a sweep
/// that shards the trial range across work units
/// ([`MonteCarloErrorModel::trial_ters`]) re-aggregates to the exact same
/// estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloErrorModel {
    /// The MAC datapath delay model.
    pub delay: DelayModel,
    /// Number of independent sampling trials per (histogram, condition).
    pub trials: u32,
    /// Base RNG seed.
    pub seed: u64,
}

impl MonteCarloErrorModel {
    /// Model with the default delay model and the given trials/seed.
    pub fn new(trials: u32, seed: u64) -> Self {
        Self::with_delay(DelayModel::nangate15_like(), trials, seed)
    }

    /// Model with an explicit delay model.
    pub fn with_delay(delay: DelayModel, trials: u32, seed: u64) -> Self {
        MonteCarloErrorModel {
            delay,
            trials,
            seed,
        }
    }

    fn engine(&self) -> MonteCarloAnalysis {
        MonteCarloAnalysis::new(self.delay, self.trials, self.seed)
    }

    /// Per-trial TER samples for the global trial indices in `trials` (a
    /// sub-range of `0..self.trials`) — the sharding hook of the sweep
    /// subsystem.  Concatenating the slices of any partition of the full
    /// range in index order and aggregating with
    /// [`TerEstimate::from_trials`] reproduces [`ErrorModel::estimate`] bit
    /// for bit (see [`timing::MonteCarloAnalysis::trial_ters`]).
    pub fn trial_ters(
        &self,
        hist: &DepthHistogram,
        condition: &OperatingCondition,
        trials: std::ops::Range<u32>,
    ) -> Vec<f64> {
        self.engine()
            .trial_ters(hist, &OperatingCorner::nominal(*condition), trials)
    }
}

impl Default for MonteCarloErrorModel {
    fn default() -> Self {
        MonteCarloErrorModel::new(32, 0)
    }
}

impl ErrorModel for MonteCarloErrorModel {
    fn name(&self) -> String {
        self.engine().name()
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_str(&format!("{self:?}"))
    }

    fn estimate(&self, hist: &DepthHistogram, condition: &OperatingCondition) -> TerEstimate {
        self.engine()
            .estimate(hist, &OperatingCorner::nominal(*condition))
    }
}

/// Per-PE process-variation error model: evaluates every condition on one
/// specific die whose PEs carry fixed Gaussian delay offsets (drawn with
/// `seed` at the delay model's `sigma_process`), reporting the PE-population
/// mean TER and the PE-to-PE spread as `ter_stddev`.
///
/// The die identity is recorded in every report row via
/// [`ErrorModel::corner`] (e.g. `"pe-var[16x4,seed=3]"`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationErrorModel {
    /// The MAC datapath delay model.
    pub delay: DelayModel,
    /// Array rows of the die.
    pub rows: usize,
    /// Array columns of the die.
    pub cols: usize,
    /// Seed of the per-PE process-offset draw.
    pub seed: u64,
}

impl VariationErrorModel {
    /// Model for the given array geometry with the default delay model.
    pub fn new(array: &ArrayConfig, seed: u64) -> Self {
        Self::with_delay(DelayModel::nangate15_like(), array, seed)
    }

    /// Model with an explicit delay model.
    pub fn with_delay(delay: DelayModel, array: &ArrayConfig, seed: u64) -> Self {
        VariationErrorModel {
            delay,
            rows: array.rows(),
            cols: array.cols(),
            seed,
        }
    }

    fn variation(&self) -> Variation {
        Variation::PerPe {
            rows: self.rows,
            cols: self.cols,
            seed: self.seed,
        }
    }

    /// The die's per-PE offsets (row-major).
    pub fn offsets(&self) -> PeOffsets {
        PeOffsets::draw(self.rows * self.cols, self.delay.sigma_process, self.seed)
    }

    /// Per-PE TERs of `hist` at `condition`, row-major over the array.
    pub fn per_pe_ters(&self, hist: &DepthHistogram, condition: &OperatingCondition) -> Vec<f64> {
        AnalyticAnalysis::new(self.delay).per_pe_ters(hist, condition, &self.offsets())
    }

    /// Per-PE activation BERs (Eq. (1)) of `hist` at `condition` for
    /// outputs accumulating `macs_per_output` MACs.
    pub fn per_pe_bers(
        &self,
        hist: &DepthHistogram,
        condition: &OperatingCondition,
        macs_per_output: usize,
    ) -> Vec<f64> {
        self.per_pe_ters(hist, condition)
            .into_iter()
            .map(|ter| ber_from_ter(ter, macs_per_output))
            .collect()
    }
}

impl ErrorModel for VariationErrorModel {
    fn name(&self) -> String {
        self.variation().label()
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_str(&format!("{self:?}"))
    }

    fn estimate(&self, hist: &DepthHistogram, condition: &OperatingCondition) -> TerEstimate {
        AnalyticAnalysis::new(self.delay).estimate(
            hist,
            &OperatingCorner {
                condition: *condition,
                variation: self.variation(),
            },
        )
    }

    fn corner(&self) -> Option<String> {
        Some(self.variation().label())
    }
}

/// Stage 3: measures accuracy under per-layer BERs.
pub trait Evaluator: Send + Sync {
    /// Display name of the evaluator.
    fn name(&self) -> String;

    /// Stable configuration fingerprint: must change whenever the
    /// accuracies this evaluator produces could change (`k`, flip model,
    /// ...).  Memoized accuracy-unit results are keyed on it — the default
    /// hashes [`Self::name`], which is only sufficient when the name
    /// encodes the full configuration.
    fn fingerprint(&self) -> u64 {
        fingerprint_str(&self.name())
    }

    /// Evaluates `model` on `dataset` with the given per-layer BERs (one per
    /// convolution layer, execution order) and RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Eval`] for shape mismatches or an empty
    /// dataset.
    fn evaluate(
        &self,
        model: &Model,
        dataset: &Dataset,
        bers: &[f64],
        seed: u64,
    ) -> Result<Accuracy, PipelineError>;
}

/// The paper's error-injection protocol: flip accumulator bits at the
/// per-layer BER and report top-1 / top-k accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKEvaluator {
    /// The `k` of the top-k accuracy figure.
    pub k: usize,
    /// Bit-flip position model.
    pub flip: FlipModel,
}

impl TopKEvaluator {
    /// Evaluator with the paper's default flip model.
    pub fn new(k: usize) -> Self {
        TopKEvaluator {
            k,
            flip: FlipModel::default(),
        }
    }
}

impl Default for TopKEvaluator {
    fn default() -> Self {
        TopKEvaluator::new(3)
    }
}

impl Evaluator for TopKEvaluator {
    fn name(&self) -> String {
        format!("top-{}", self.k)
    }

    fn fingerprint(&self) -> u64 {
        // Debug output covers k and the flip model.
        fingerprint_str(&format!("{self:?}"))
    }

    fn evaluate(
        &self,
        model: &Model,
        dataset: &Dataset,
        bers: &[f64],
        seed: u64,
    ) -> Result<Accuracy, PipelineError> {
        let config = FaultConfig::per_layer(bers.to_vec(), seed).with_flip(self.flip);
        Ok(evaluate_topk(model, dataset, &config, self.k)?)
    }
}

/// Stage 4 (optional): executes a layer's schedule on a timing-aware
/// engine and reports pipeline dynamics (cycles, stalls, buffer pressure).
///
/// This is the event-driven counterpart of the analytic simulation stage:
/// probers never change functional results or error rates, they measure
/// *when* the same MACs happen.  The default implementation is
/// [`EventProber`]; alternative engines (other channel topologies, other
/// latency models) plug in by implementing the same trait.
pub trait DataflowProber: Send + Sync {
    /// Display name of the prober.
    fn name(&self) -> String;

    /// Stable configuration fingerprint: must change whenever the reports
    /// this prober produces could change (channel capacities, latencies,
    /// ...).  Memoized probe-unit results are keyed on it — the default
    /// hashes [`Self::name`], which is only sufficient when the name
    /// encodes the full configuration.
    fn fingerprint(&self) -> u64 {
        fingerprint_str(&self.name())
    }

    /// Probes one layer: executes `schedule` on `problem` under `dataflow`
    /// and returns the timing report.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Sim`] for schedules that do not cover the
    /// problem and [`PipelineError::Probe`] for engine failures.
    fn probe(
        &self,
        problem: &GemmProblem,
        array: &ArrayConfig,
        dataflow: Dataflow,
        schedule: &ComputeSchedule,
        options: &SimOptions,
    ) -> Result<DataflowReport, PipelineError>;
}

/// The default prober: [`dataflow_sim::run_dataflow`] with a fixed
/// [`EngineConfig`], no trace recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventProber {
    /// Channel capacities and hop latency of the simulated fabric.
    pub config: EngineConfig,
}

impl EventProber {
    /// Prober with the given engine configuration.
    pub fn new(config: EngineConfig) -> Self {
        EventProber { config }
    }
}

impl DataflowProber for EventProber {
    fn name(&self) -> String {
        "event-engine".to_string()
    }

    fn fingerprint(&self) -> u64 {
        // Debug output covers every engine knob.
        fingerprint_str(&format!("{self:?}"))
    }

    fn probe(
        &self,
        problem: &GemmProblem,
        array: &ArrayConfig,
        dataflow: Dataflow,
        schedule: &ComputeSchedule,
        options: &SimOptions,
    ) -> Result<DataflowReport, PipelineError> {
        let run = run_dataflow(
            problem,
            array,
            dataflow,
            schedule,
            options,
            &self.config,
            &mut NullObserver,
            None,
        )?;
        Ok(run.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_match_paper_set_conventions() {
        let names: Vec<String> = Algorithm::paper_set()
            .iter()
            .map(ScheduleSource::name)
            .collect();
        assert_eq!(names[0], "baseline");
        assert_eq!(names[1], "reorder[sign_first]");
        assert_eq!(names[2], "cluster-then-reorder[sign_first]");
    }

    #[test]
    fn fingerprints_distinguish_configs() {
        let a = ReadOptimizer::new(ReadConfig::default());
        let b = ReadOptimizer::new(ReadConfig {
            seed: 1,
            ..ReadConfig::default()
        });
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), Baseline.fingerprint());
        // Same config -> same fingerprint.
        assert_eq!(
            a.fingerprint(),
            ReadOptimizer::new(ReadConfig::default()).fingerprint()
        );
    }

    #[test]
    fn baseline_source_matches_compute_schedule_baseline() {
        let weights = Matrix::from_fn(12, 6, |r, c| (r + c) as i8);
        let got = Baseline.schedule(&weights, 4).unwrap();
        assert_eq!(got, ComputeSchedule::baseline(12, 6, 4));
    }

    #[test]
    fn algorithm_sources_produce_valid_schedules() {
        let weights = Matrix::from_fn(24, 8, |r, c| (((r * 5 + c * 3) % 11) as i8) - 5);
        for algorithm in Algorithm::paper_set() {
            let schedule = algorithm.schedule(&weights, 4).unwrap();
            assert!(schedule.validate(24, 8).is_ok(), "{algorithm}");
        }
    }

    fn stress_histogram() -> DepthHistogram {
        use accel_sim::{Dataflow, GemmProblem, SimOptions};
        let w = Matrix::from_fn(48, 4, |r, c| (((r * 11 + c * 3) % 15) as i8) - 7);
        let a = Matrix::from_fn(48, 8, |r, c| ((r + 2 * c) % 5) as i8);
        let mut hist = DepthHistogram::new();
        GemmProblem::new(w, a)
            .unwrap()
            .simulate(
                &ArrayConfig::paper_default(),
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut hist,
            )
            .unwrap();
        hist
    }

    #[test]
    fn error_model_fingerprints_distinguish_configurations() {
        let analytic = DelayErrorModel::default();
        let mc_a = MonteCarloErrorModel::new(32, 0);
        let mc_b = MonteCarloErrorModel::new(32, 1);
        let mc_c = MonteCarloErrorModel::new(64, 0);
        let var_a = VariationErrorModel::new(&ArrayConfig::paper_default(), 0);
        let var_b = VariationErrorModel::new(&ArrayConfig::paper_default(), 1);
        let prints = [
            analytic.fingerprint(),
            mc_a.fingerprint(),
            mc_b.fingerprint(),
            mc_c.fingerprint(),
            var_a.fingerprint(),
            var_b.fingerprint(),
        ];
        for (i, a) in prints.iter().enumerate() {
            for b in &prints[i + 1..] {
                assert_ne!(a, b, "fingerprints must distinguish configurations");
            }
        }
        assert_eq!(
            mc_a.fingerprint(),
            MonteCarloErrorModel::new(32, 0).fingerprint()
        );
    }

    #[test]
    fn delay_error_model_estimate_matches_legacy_ter() {
        let hist = stress_histogram();
        let model = DelayErrorModel::default();
        let condition = OperatingCondition::aging_vt(10.0, 0.05);
        let estimate = model.estimate(&hist, &condition);
        assert_eq!(estimate.ter, hist.ter(&model.delay, &condition));
        assert_eq!(estimate.stddev, None);
        assert_eq!(model.ter(&hist, &condition), estimate.ter);
        assert_eq!(model.corner(), None);
    }

    #[test]
    fn monte_carlo_error_model_reports_spread_and_is_reproducible() {
        let hist = stress_histogram();
        let condition = OperatingCondition::aging_vt(10.0, 0.05);
        let model = MonteCarloErrorModel::new(48, 7);
        let a = model.estimate(&hist, &condition);
        let b = model.estimate(&hist, &condition);
        assert_eq!(a, b);
        assert!(a.ter > 0.0);
        assert!(a.stddev.unwrap() > 0.0);
    }

    #[test]
    fn variation_error_model_exposes_per_pe_bers_and_corner() {
        let hist = stress_histogram();
        let condition = OperatingCondition::aging_vt(10.0, 0.05);
        let array = ArrayConfig::paper_default();
        let model = VariationErrorModel::new(&array, 3);
        let estimate = model.estimate(&hist, &condition);
        assert!(estimate.ter > 0.0);
        assert!(estimate.stddev.unwrap() > 0.0, "PEs of a die must differ");
        let bers = model.per_pe_bers(&hist, &condition, 1000);
        assert_eq!(bers.len(), array.pe_count());
        assert!(bers.iter().all(|b| (0.0..=1.0).contains(b)));
        assert_eq!(model.corner().unwrap(), "pe-var[16x4,seed=3]");
        assert_eq!(model.name(), "pe-var[16x4,seed=3]");
    }

    #[test]
    fn event_prober_reports_dynamics_and_fingerprints_its_config() {
        let w = Matrix::from_fn(16, 4, |r, c| (((r * 5 + c * 3) % 11) as i8) - 5);
        let a = Matrix::from_fn(16, 6, |r, c| ((r + 2 * c) % 5) as i8);
        let problem = GemmProblem::new(w, a).unwrap();
        let schedule = ComputeSchedule::baseline(16, 4, 2);
        let prober = EventProber::default();
        let report = prober
            .probe(
                &problem,
                &ArrayConfig::new(4, 2),
                Dataflow::WeightStationary,
                &schedule,
                &SimOptions::exhaustive(),
            )
            .unwrap();
        assert_eq!(report.macs, 16 * 4 * 6);
        assert!(report.peak_psum_buffer > 0);

        let tight = EventProber::new(EngineConfig {
            channel_capacity: 1,
            hop_latency: 2,
        });
        assert_ne!(prober.fingerprint(), tight.fingerprint());
        assert_eq!(prober.fingerprint(), EventProber::default().fingerprint());

        // An under-covering schedule is a simulation-input error.
        let bad = ComputeSchedule::baseline(16, 2, 2);
        let err = prober
            .probe(
                &problem,
                &ArrayConfig::new(4, 2),
                Dataflow::OutputStationary,
                &bad,
                &SimOptions::exhaustive(),
            )
            .unwrap_err();
        assert!(matches!(err, PipelineError::Sim(_)));
    }
}
