//! The corner/die sweep subsystem: evaluate one pipeline across a grid of
//! operating corners and silicon dies in a single run.
//!
//! A [`SweepPlan`] describes the grid — operating conditions crossed with
//! dies ([`DieSpec::Typical`] silicon or specific [`DieSpec::PerPe`] dies)
//! — plus an optional Monte-Carlo trial budget
//! ([`SweepPlan::monte_carlo`]).  [`crate::ReadPipeline::run_sweep`] expands
//! the plan into a typed [`crate::WorkPlan`] of position-independent work
//! units executed by any [`crate::Executor`] (serial, threaded, or worker
//! subprocesses), so every execution strategy produces byte-identical
//! reports.
//!
//! The contract every consumer can rely on:
//!
//! * **Cell ≡ standalone run.**  Each cell of the grid produces exactly the
//!   [`LayerReport`] rows an equivalent single-condition
//!   [`crate::ReadPipeline`] run would — same error-model stage, same field
//!   values, byte-identical `to_json()` rows.  Typical-silicon cells use
//!   [`crate::DelayErrorModel`] (or [`crate::MonteCarloErrorModel`] when a
//!   trial budget is set); per-PE die cells use
//!   [`crate::VariationErrorModel`].
//! * **Sharded == unsharded.**  A cell's Monte-Carlo trials are split into
//!   shards of [`MonteCarloSweep::trials_per_shard`] trials, each an
//!   independent work unit; the per-shard samples are concatenated in trial
//!   order and aggregated once
//!   ([`timing::TerEstimate::from_trials`]), which reproduces the unsharded
//!   estimate bit for bit because trial `t`'s RNG stream depends only on
//!   `(seed, t)`.
//! * **Schedules and histograms are computed once.**  Histograms are
//!   corner-independent, so a sweep emits one histogram work unit per
//!   (workload, source) pair and every grid cell reuses it; the schedule
//!   cache and the histogram cache ([`crate::CacheStats`]) additionally
//!   amortize repeated runs on the same pipeline.
//!
//! The work-unit expansion is also the seam for distributing a sweep
//! across processes or machines: a unit is identified by its
//! [`crate::WorkUnit`] id alone (`(cell, pair)` for histograms,
//! `(cell, trial range)` for Monte-Carlo shards), its result is
//! position-independent, and [`crate::SubprocessExecutor`] already ships
//! both over a line-oriented stdin/stdout wire protocol.

use accel_sim::ArrayConfig;
use timing::{DelayModel, OperatingCondition, OperatingCorner, Variation};

use crate::error::PipelineError;
use crate::report::{push_json_f64, push_json_str, push_layer_rows, LayerReport, NetworkReport};
use crate::stage::{DelayErrorModel, ErrorModel, MonteCarloErrorModel, VariationErrorModel};

/// The silicon of one sweep-grid die axis entry.
///
/// The array geometry is deliberately absent: it is resolved against the
/// pipeline's configured array when the sweep runs, so one plan works for
/// any pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DieSpec {
    /// Typical silicon (process sigma folded into per-cycle noise).  Cells
    /// on this die use the analytic [`DelayErrorModel`] — or the
    /// [`MonteCarloErrorModel`] when the plan carries a trial budget.
    #[default]
    Typical,
    /// A specific die: per-PE Gaussian delay offsets drawn with this seed.
    /// Cells on this die use the [`VariationErrorModel`] (the Monte-Carlo
    /// budget does not apply; the per-PE model already reports the
    /// PE-to-PE spread).
    PerPe {
        /// Seed of the per-PE process-offset draw.
        seed: u64,
    },
}

impl DieSpec {
    /// The [`Variation`] this die resolves to on `array`.
    pub fn variation(&self, array: &ArrayConfig) -> Variation {
        match *self {
            DieSpec::Typical => Variation::Typical,
            DieSpec::PerPe { seed } => Variation::per_pe(array, seed),
        }
    }
}

/// Monte-Carlo trial budget of a sweep's typical-silicon cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloSweep {
    /// Total sampling trials per (layer, source, condition) row.
    pub trials: u32,
    /// Base RNG seed (trial `t` derives its stream from `(seed, t)`).
    pub seed: u64,
    /// Maximum trials evaluated by one work unit; `0` keeps all trials in a
    /// single shard.  Sharding never changes the result — only how the
    /// trial range is split across workers.
    pub trials_per_shard: u32,
}

impl MonteCarloSweep {
    /// Number of work units a cell's trial range expands into.
    pub fn shards(&self) -> u32 {
        if self.trials_per_shard == 0 || self.trials_per_shard >= self.trials {
            1
        } else {
            self.trials.div_ceil(self.trials_per_shard)
        }
    }

    /// The global trial range of shard `shard` (of [`Self::shards`]).
    pub fn shard_range(&self, shard: u32) -> std::ops::Range<u32> {
        let per = if self.trials_per_shard == 0 {
            self.trials
        } else {
            self.trials_per_shard
        };
        let lo = shard * per;
        lo..(lo.saturating_add(per)).min(self.trials)
    }
}

/// A sweep grid: operating conditions crossed with dies, plus an optional
/// Monte-Carlo trial budget for the typical-silicon cells.
///
/// Cells run die-major (all conditions of the first die, then the next) —
/// the order [`timing::OperatingCorner::grid`] produces.  With no die
/// configured the plan sweeps typical silicon only.
///
/// # Example
///
/// ```
/// use read_pipeline::SweepPlan;
/// use timing::paper_conditions;
///
/// let plan = SweepPlan::new()
///     .conditions(paper_conditions())
///     .typical()
///     .dies([3, 4])
///     .monte_carlo(256, 9)
///     .trials_per_shard(64);
/// assert_eq!(plan.cell_count(), 6 * 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepPlan {
    conditions: Vec<OperatingCondition>,
    dies: Vec<DieSpec>,
    // (trials, seed); the shard cap lives apart so that setting it without
    // a budget is inert rather than conjuring a zero-trial budget.
    monte_carlo: Option<(u32, u64)>,
    trials_per_shard: u32,
    delay: Option<DelayModel>,
}

impl SweepPlan {
    /// An empty plan; add at least one condition before running it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one operating condition.
    pub fn condition(mut self, condition: OperatingCondition) -> Self {
        self.conditions.push(condition);
        self
    }

    /// Adds several operating conditions.
    pub fn conditions(mut self, conditions: impl IntoIterator<Item = OperatingCondition>) -> Self {
        self.conditions.extend(conditions);
        self
    }

    /// Adds the typical-silicon die.
    pub fn typical(mut self) -> Self {
        self.dies.push(DieSpec::Typical);
        self
    }

    /// Adds one per-PE die with the given offset seed.
    pub fn die(mut self, seed: u64) -> Self {
        self.dies.push(DieSpec::PerPe { seed });
        self
    }

    /// Adds one per-PE die per seed.
    pub fn dies(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.dies
            .extend(seeds.into_iter().map(|seed| DieSpec::PerPe { seed }));
        self
    }

    /// Sets the Monte-Carlo trial budget of the typical-silicon cells
    /// (unsharded unless [`Self::trials_per_shard`] is also set).
    pub fn monte_carlo(mut self, trials: u32, seed: u64) -> Self {
        self.monte_carlo = Some((trials, seed));
        self
    }

    /// Caps the trials one work unit evaluates (`0` = single shard).  Only
    /// meaningful alongside [`Self::monte_carlo`]; without a trial budget
    /// the cap is inert.
    pub fn trials_per_shard(mut self, trials_per_shard: u32) -> Self {
        self.trials_per_shard = trials_per_shard;
        self
    }

    /// Overrides the MAC delay model every cell evaluates with (default:
    /// [`DelayModel::nangate15_like`]).
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = Some(delay);
        self
    }

    /// The configured conditions, in cell order.
    pub fn condition_set(&self) -> &[OperatingCondition] {
        &self.conditions
    }

    /// The configured dies, in cell order ([`DieSpec::Typical`] when none
    /// was configured).
    pub fn die_set(&self) -> Vec<DieSpec> {
        if self.dies.is_empty() {
            vec![DieSpec::Typical]
        } else {
            self.dies.clone()
        }
    }

    /// The Monte-Carlo budget, if any, with the shard cap resolved.
    pub fn monte_carlo_spec(&self) -> Option<MonteCarloSweep> {
        self.monte_carlo.map(|(trials, seed)| MonteCarloSweep {
            trials,
            seed,
            trials_per_shard: self.trials_per_shard,
        })
    }

    /// The delay model cells evaluate with.
    pub fn delay_model(&self) -> DelayModel {
        self.delay.unwrap_or_else(DelayModel::nangate15_like)
    }

    /// Number of grid cells the plan expands into.
    pub fn cell_count(&self) -> usize {
        self.conditions.len() * self.die_set().len()
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Builder`] when no condition is configured or
    /// a Monte-Carlo budget requests zero trials.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.conditions.is_empty() {
            return Err(PipelineError::builder(
                "a sweep plan needs at least one operating condition (use .condition(..))",
            ));
        }
        if let Some((0, _)) = self.monte_carlo {
            return Err(PipelineError::builder(
                "a sweep's Monte-Carlo budget needs at least one trial",
            ));
        }
        Ok(())
    }

    /// The corner grid the plan expands into on `array`, in cell order —
    /// the single encoding of that order
    /// ([`timing::OperatingCorner::grid`], die-major).
    pub fn corners(&self, array: &ArrayConfig) -> Vec<OperatingCorner> {
        let variations: Vec<Variation> = self
            .die_set()
            .iter()
            .map(|die| die.variation(array))
            .collect();
        OperatingCorner::grid(&self.conditions, &variations)
    }

    /// The error-model stage the cell at `corner` uses — derived from the
    /// corner's variation alone, so the stage always matches the grid.
    pub(crate) fn cell_model(&self, corner: &OperatingCorner) -> DieModel {
        let delay = self.delay_model();
        match (corner.variation, self.monte_carlo_spec()) {
            (Variation::PerPe { rows, cols, seed }, _) => DieModel::PerPe(VariationErrorModel {
                delay,
                rows,
                cols,
                seed,
            }),
            (Variation::Typical, Some(mc)) => DieModel::MonteCarlo(
                MonteCarloErrorModel::with_delay(delay, mc.trials, mc.seed),
                mc,
            ),
            (Variation::Typical, None) => DieModel::Analytic(DelayErrorModel::new(delay)),
        }
    }
}

/// The resolved error-model stage of one die of a sweep — the same stage
/// types a standalone pipeline would be built with, which is what makes a
/// cell byte-identical to the equivalent single-condition run.
#[derive(Clone)]
pub(crate) enum DieModel {
    /// Typical silicon, analytic expectation.
    Analytic(DelayErrorModel),
    /// Typical silicon, sampled: the model plus the shard layout.
    MonteCarlo(MonteCarloErrorModel, MonteCarloSweep),
    /// One specific die.
    PerPe(VariationErrorModel),
}

impl DieModel {
    /// The stage as a trait object (for estimates, BER conversion, names).
    pub(crate) fn as_error_model(&self) -> &dyn ErrorModel {
        match self {
            DieModel::Analytic(m) => m,
            DieModel::MonteCarlo(m, _) => m,
            DieModel::PerPe(m) => m,
        }
    }

    /// The Monte-Carlo model and shard layout, when this die samples.
    pub(crate) fn monte_carlo(&self) -> Option<(&MonteCarloErrorModel, MonteCarloSweep)> {
        match self {
            DieModel::MonteCarlo(m, mc) => Some((m, *mc)),
            _ => None,
        }
    }

    /// Work units this die's cells expand into (shards for Monte-Carlo
    /// dies, one otherwise).
    pub(crate) fn shards(&self) -> u32 {
        self.monte_carlo().map(|(_, mc)| mc.shards()).unwrap_or(1)
    }
}

/// One (die, condition) cell of a sweep: the rows the equivalent
/// single-condition pipeline run would produce, plus the cell's identity.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Die label (`"typical"` or `"pe-var[16x4,seed=3]"`).
    pub die: String,
    /// Operating-condition name.
    pub condition: String,
    /// Error-model stage name the cell was evaluated with.
    pub error_model: String,
    /// Work units the cell's Monte-Carlo trials were split across (`1` for
    /// unsharded or non-sampling cells).  Informational only: the rows are
    /// independent of the shard count.
    pub shards: u32,
    /// Rows in (layer-major, then source) order — exactly the order and
    /// content of the equivalent single-condition
    /// [`crate::ReadPipeline::run_ter`] report.
    pub rows: Vec<LayerReport>,
}

impl SweepCell {
    /// The cell's rows wrapped as a standalone [`NetworkReport`] — renders
    /// byte-identically to the equivalent single-condition run's report.
    pub fn as_network_report(&self, network: &str) -> NetworkReport {
        NetworkReport {
            network: network.to_string(),
            rows: self.rows.clone(),
        }
    }
}

/// The worst (highest-TER) row of one algorithm across a whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCase {
    /// Schedule-source name.
    pub algorithm: String,
    /// The worst TER observed.
    pub ter: f64,
    /// Layer of the worst row.
    pub layer: String,
    /// Operating condition of the worst row.
    pub condition: String,
    /// Die label of the worst row.
    pub die: String,
}

/// A full corner/die sweep: per-cell [`LayerReport`]s plus the cross-corner
/// summary (worst case per algorithm), with a stable, deterministic
/// [`SweepReport::to_json`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    /// Network / experiment label.
    pub network: String,
    /// Cells in deterministic order: die-major, then condition (the order
    /// the plan was configured with), independent of execution mode and
    /// shard layout.
    pub cells: Vec<SweepCell>,
    /// Per-algorithm worst case across all cells, in source order.
    pub worst: Vec<WorstCase>,
}

impl SweepReport {
    /// The cell for a (die label, condition name) pair, if present.
    ///
    /// Name-keyed: with duplicate (die, condition) pairs configured this
    /// returns the first match — consume [`SweepReport::cells`] positionally
    /// in that case.
    pub fn cell(&self, die: &str, condition: &str) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.die == die && c.condition == condition)
    }

    /// The worst case recorded for `algorithm`, if present.
    pub fn worst_case(&self, algorithm: &str) -> Option<&WorstCase> {
        self.worst.iter().find(|w| w.algorithm == algorithm)
    }

    /// The TER-vs-corner curve of one (layer, algorithm) pair: the matching
    /// row's TER per cell, in cell order — the sweep-level analogue of the
    /// paper's accuracy-vs-corner curves.
    pub fn ter_curve<'a>(
        &'a self,
        layer: &'a str,
        algorithm: &'a str,
    ) -> impl Iterator<Item = (&'a SweepCell, f64)> {
        self.cells.iter().filter_map(move |cell| {
            cell.rows
                .iter()
                .find(|r| r.layer == layer && r.algorithm == algorithm)
                .map(|r| (cell, r.ter))
        })
    }

    /// Geometric-mean and maximum TER reduction of `algorithm` relative to
    /// `baseline` across every cell (see [`NetworkReport::ter_reduction`]).
    pub fn ter_reduction(&self, algorithm: &str, baseline: &str) -> (f64, f64) {
        let mut log_sum = 0.0;
        let mut count = 0usize;
        let mut max = 0.0f64;
        for cell in &self.cells {
            for row in cell.rows.iter().filter(|r| r.algorithm == algorithm) {
                if let Some(base) = cell
                    .rows
                    .iter()
                    .find(|r| r.layer == row.layer && r.algorithm == baseline)
                {
                    if row.ter > 0.0 && base.ter > 0.0 {
                        let reduction = base.ter / row.ter;
                        log_sum += reduction.ln();
                        count += 1;
                        max = max.max(reduction);
                    }
                }
            }
        }
        if count == 0 {
            (1.0, 1.0)
        } else {
            ((log_sum / count as f64).exp(), max)
        }
    }

    /// Deterministic JSON rendering of the sweep (stable key order; cell
    /// rows share the [`NetworkReport::to_json`] row layout byte for byte).
    pub fn to_json(&self) -> String {
        let rows: usize = self.cells.iter().map(|c| c.rows.len()).sum();
        let mut out = String::with_capacity(256 + rows * 192 + self.worst.len() * 128);
        out.push_str("{\"network\":");
        push_json_str(&mut out, &self.network);
        out.push_str(",\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"die\":");
            push_json_str(&mut out, &cell.die);
            out.push_str(",\"condition\":");
            push_json_str(&mut out, &cell.condition);
            out.push_str(",\"error_model\":");
            push_json_str(&mut out, &cell.error_model);
            out.push_str(",\"shards\":");
            out.push_str(&cell.shards.to_string());
            out.push_str(",\"rows\":[");
            push_layer_rows(&mut out, &cell.rows);
            out.push_str("]}");
        }
        out.push_str("],\"worst\":[");
        for (i, w) in self.worst.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"algorithm\":");
            push_json_str(&mut out, &w.algorithm);
            push_json_f64(&mut out, ",\"ter\":", w.ter);
            out.push_str(",\"layer\":");
            push_json_str(&mut out, &w.layer);
            out.push_str(",\"condition\":");
            push_json_str(&mut out, &w.condition);
            out.push_str(",\"die\":");
            push_json_str(&mut out, &w.die);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timing::OperatingCondition;

    #[test]
    fn plan_builders_compose_in_any_order() {
        let a = SweepPlan::new()
            .conditions([OperatingCondition::ideal()])
            .monte_carlo(64, 3)
            .trials_per_shard(16);
        let b = SweepPlan::new()
            .trials_per_shard(16)
            .monte_carlo(64, 3)
            .condition(OperatingCondition::ideal());
        assert_eq!(a, b);
        assert_eq!(
            a.monte_carlo_spec().unwrap(),
            MonteCarloSweep {
                trials: 64,
                seed: 3,
                trials_per_shard: 16
            }
        );
    }

    #[test]
    fn plan_defaults_to_the_typical_die() {
        let plan = SweepPlan::new().condition(OperatingCondition::ideal());
        assert_eq!(plan.die_set(), vec![DieSpec::Typical]);
        assert_eq!(plan.cell_count(), 1);
        let with_dies = plan.typical().dies([1, 2]);
        assert_eq!(with_dies.die_set().len(), 3);
        assert_eq!(with_dies.cell_count(), 3);
    }

    #[test]
    fn plan_validation_catches_empty_and_zero_trials() {
        assert!(SweepPlan::new().validate().is_err());
        let zero_trials = SweepPlan::new()
            .condition(OperatingCondition::ideal())
            .monte_carlo(0, 1);
        assert!(zero_trials.validate().is_err());
        assert!(SweepPlan::new()
            .condition(OperatingCondition::ideal())
            .validate()
            .is_ok());
    }

    #[test]
    fn shard_cap_without_a_budget_is_inert() {
        // A shard cap alone must not conjure a (zero-trial) Monte-Carlo
        // budget: the plan stays analytic and valid.
        let plan = SweepPlan::new()
            .condition(OperatingCondition::ideal())
            .trials_per_shard(8);
        assert!(plan.validate().is_ok());
        assert_eq!(plan.monte_carlo_spec(), None);
        // Adding the budget afterwards picks the cap up.
        let with_budget = plan.monte_carlo(32, 1);
        assert_eq!(
            with_budget.monte_carlo_spec().unwrap(),
            MonteCarloSweep {
                trials: 32,
                seed: 1,
                trials_per_shard: 8
            }
        );
    }

    #[test]
    fn plan_corners_enumerate_the_die_major_grid() {
        use accel_sim::ArrayConfig;
        let plan = SweepPlan::new()
            .conditions([
                OperatingCondition::ideal(),
                OperatingCondition::aging_vt(10.0, 0.05),
            ])
            .typical()
            .die(3);
        let corners = plan.corners(&ArrayConfig::paper_default());
        let labels: Vec<String> = corners.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            [
                "Ideal",
                "Aging&VT-5%",
                "Ideal+pe-var[16x4,seed=3]",
                "Aging&VT-5%+pe-var[16x4,seed=3]",
            ]
        );
    }

    #[test]
    fn shard_layout_partitions_the_trial_range() {
        let mc = MonteCarloSweep {
            trials: 10,
            seed: 0,
            trials_per_shard: 4,
        };
        assert_eq!(mc.shards(), 3);
        assert_eq!(mc.shard_range(0), 0..4);
        assert_eq!(mc.shard_range(1), 4..8);
        assert_eq!(mc.shard_range(2), 8..10);
        // Unsharded layouts.
        let single = MonteCarloSweep {
            trials: 10,
            seed: 0,
            trials_per_shard: 0,
        };
        assert_eq!(single.shards(), 1);
        assert_eq!(single.shard_range(0), 0..10);
        let oversized = MonteCarloSweep {
            trials: 10,
            seed: 0,
            trials_per_shard: 32,
        };
        assert_eq!(oversized.shards(), 1);
        assert_eq!(oversized.shard_range(0), 0..10);
    }

    #[test]
    fn empty_sweep_report_renders_stably() {
        let report = SweepReport {
            network: "n".into(),
            cells: vec![],
            worst: vec![],
        };
        assert_eq!(
            report.to_json(),
            "{\"network\":\"n\",\"cells\":[],\"worst\":[]}"
        );
        assert!(report.cell("typical", "Ideal").is_none());
        assert!(report.worst_case("baseline").is_none());
    }
}
