//! Synthetic weight initialisation.
//!
//! Trained checkpoints are not available offline, so the model zoo uses
//! He-style random weights quantized to int8.  What matters for the READ
//! experiments is the *sign and magnitude structure* of the weight matrices:
//! He-initialised quantized weights have the roughly balanced sign
//! distribution the paper's Fig. 5(a) shows for trained layers, plus a
//! configurable sparsity (exact zeros), so the optimizer sees realistic
//! inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator of synthetic "trained" weights and post-ReLU activations.
#[derive(Debug, Clone)]
pub struct WeightInit {
    rng: StdRng,
    sparsity: f64,
}

impl WeightInit {
    /// Creates a generator with the given seed and default 5 % sparsity.
    pub fn new(seed: u64) -> Self {
        WeightInit {
            rng: StdRng::seed_from_u64(seed),
            sparsity: 0.05,
        }
    }

    /// Sets the fraction of exactly-zero weights.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1]`.
    pub fn with_sparsity(mut self, sparsity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sparsity),
            "sparsity must be in [0,1], got {sparsity}"
        );
        self.sparsity = sparsity;
        self
    }

    /// Draws one int8 weight for a layer with the given fan-in.
    ///
    /// Weights follow a centred Gaussian with standard deviation
    /// `sqrt(2 / fan_in)` (He initialisation), scaled so the distribution
    /// uses a reasonable portion of the int8 range after quantization.
    pub fn weight(&mut self, fan_in: usize) -> i8 {
        if self.rng.gen::<f64>() < self.sparsity {
            return 0;
        }
        let std = (2.0 / fan_in.max(1) as f64).sqrt();
        // Map the real-valued weight onto int8 with a per-layer scale that
        // puts ~3 sigma at the integer limit.
        let scale = 127.0 / (3.0 * std);
        let w = self.normal() * std * scale;
        w.round().clamp(-127.0, 127.0) as i8
    }

    /// Draws a post-ReLU activation: zero with probability `zero_fraction`,
    /// otherwise the magnitude of a Gaussian scaled into `[0, 127]`.
    pub fn activation(&mut self, zero_fraction: f64) -> i8 {
        if self.rng.gen::<f64>() < zero_fraction {
            return 0;
        }
        let a = (self.normal().abs() * 40.0).min(127.0);
        a.round() as i8
    }

    /// Standard normal sample (Box–Muller).
    fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Generates a vector of post-ReLU activations with the given sparsity.
pub fn synthetic_activations(len: usize, zero_fraction: f64, seed: u64) -> Vec<i8> {
    let mut init = WeightInit::new(seed);
    (0..len).map(|_| init.activation(zero_fraction)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_roughly_sign_balanced() {
        let mut init = WeightInit::new(1);
        let weights: Vec<i8> = (0..20_000).map(|_| init.weight(576)).collect();
        let nonneg = weights.iter().filter(|&&w| w >= 0).count() as f64 / weights.len() as f64;
        assert!(
            (0.45..=0.60).contains(&nonneg),
            "non-negative fraction {nonneg}"
        );
        // The distribution must actually use the int8 range.
        let max = weights.iter().map(|w| w.unsigned_abs()).max().unwrap();
        assert!(max > 60, "max |w| = {max}");
    }

    #[test]
    fn sparsity_produces_zeros() {
        let mut init = WeightInit::new(2).with_sparsity(0.5);
        let weights: Vec<i8> = (0..10_000).map(|_| init.weight(64)).collect();
        let zeros = weights.iter().filter(|&&w| w == 0).count() as f64 / weights.len() as f64;
        assert!((0.45..=0.60).contains(&zeros), "zero fraction {zeros}");
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn invalid_sparsity_panics() {
        let _ = WeightInit::new(0).with_sparsity(1.5);
    }

    #[test]
    fn activations_are_non_negative() {
        let acts = synthetic_activations(5000, 0.5, 3);
        assert!(acts.iter().all(|&a| a >= 0));
        let zeros = acts.iter().filter(|&&a| a == 0).count() as f64 / acts.len() as f64;
        assert!(zeros > 0.4, "ReLU sparsity {zeros}");
        assert!(acts.iter().any(|&a| a > 20));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = synthetic_activations(100, 0.3, 7);
        let b = synthetic_activations(100, 0.3, 7);
        let c = synthetic_activations(100, 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
