//! Synthetic classification datasets.
//!
//! CIFAR-10/100 and ImageNet are not available offline, so the accuracy
//! experiments use a synthetic class-prototype dataset: each class has a
//! random prototype image, and samples are noisy copies of their class
//! prototype.  After the classifier head is fitted to the model's features
//! (see [`crate::fit`]), clean accuracy lands in a realistic range and the
//! accuracy-vs-error-rate degradation depends on error propagation through
//! the real forward pass — the property the paper's Figs. 10 and 11 measure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::QnnError;
use crate::tensor::Tensor;

/// A labelled dataset of int8 CHW images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    images: Vec<Tensor<i8>>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from parallel image/label vectors.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidDataset`] when the vectors differ in
    /// length, are empty, or a label is out of range.
    pub fn new(
        images: Vec<Tensor<i8>>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, QnnError> {
        if images.is_empty() || images.len() != labels.len() {
            return Err(QnnError::dataset(format!(
                "dataset needs equal non-zero image/label counts, got {}/{}",
                images.len(),
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(QnnError::dataset(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Dataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Returns `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrow the images.
    pub fn images(&self) -> &[Tensor<i8>] {
        &self.images
    }

    /// Borrow the labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterate over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tensor<i8>, usize)> {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// A new dataset containing only the first `n` samples (or all of them
    /// when `n` exceeds the length).  Useful for calibration subsets.
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len()).max(1);
        Dataset {
            images: self.images[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
            num_classes: self.num_classes,
        }
    }
}

/// Builder for synthetic class-prototype datasets.
///
/// # Example
///
/// ```
/// use qnn::SyntheticDatasetBuilder;
///
/// # fn main() -> Result<(), qnn::QnnError> {
/// let dataset = SyntheticDatasetBuilder::new(10, [3, 32, 32])
///     .samples_per_class(4)
///     .noise(12.0)
///     .seed(1)
///     .build()?;
/// assert_eq!(dataset.len(), 40);
/// assert_eq!(dataset.num_classes(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticDatasetBuilder {
    num_classes: usize,
    shape: [usize; 3],
    samples_per_class: usize,
    noise: f64,
    seed: u64,
}

impl SyntheticDatasetBuilder {
    /// Creates a builder for `num_classes` classes of CHW images of the
    /// given shape.
    pub fn new(num_classes: usize, shape: [usize; 3]) -> Self {
        SyntheticDatasetBuilder {
            num_classes,
            shape,
            samples_per_class: 8,
            noise: 15.0,
            seed: 0xDA7A,
        }
    }

    /// Sets how many samples each class receives.
    pub fn samples_per_class(mut self, samples: usize) -> Self {
        self.samples_per_class = samples;
        self
    }

    /// Sets the per-pixel Gaussian noise standard deviation (int8 units).
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidDataset`] for zero classes, zero samples
    /// per class or an empty image shape.
    pub fn build(&self) -> Result<Dataset, QnnError> {
        if self.num_classes == 0 || self.samples_per_class == 0 {
            return Err(QnnError::dataset(
                "need at least one class and one sample per class",
            ));
        }
        if self.shape.contains(&0) {
            return Err(QnnError::dataset("image shape must be non-empty"));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Class prototypes: smooth random patterns so neighbouring pixels
        // correlate like natural images.
        let prototypes: Vec<Tensor<i8>> = (0..self.num_classes)
            .map(|_| {
                let fx = rng.gen_range(0.2..1.5);
                let fy = rng.gen_range(0.2..1.5);
                let phase_x: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let phase_y: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let amp = rng.gen_range(40.0..90.0);
                Tensor::from_fn(self.shape, |c, y, x| {
                    let v = amp
                        * ((x as f64 * fx + phase_x + c as f64).sin()
                            + (y as f64 * fy + phase_y - c as f64).cos())
                        / 2.0;
                    v.round().clamp(-127.0, 127.0) as i8
                })
            })
            .collect();

        let mut images = Vec::with_capacity(self.num_classes * self.samples_per_class);
        let mut labels = Vec::with_capacity(images.capacity());
        for (class, proto) in prototypes.iter().enumerate() {
            for _ in 0..self.samples_per_class {
                let noisy = proto.map(|p| {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    (f64::from(p) + n * self.noise).round().clamp(-127.0, 127.0) as i8
                });
                images.push(noisy);
                labels.push(class);
            }
        }
        Dataset::new(images, labels, self.num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_counts() {
        let d = SyntheticDatasetBuilder::new(5, [3, 8, 8])
            .samples_per_class(3)
            .build()
            .unwrap();
        assert_eq!(d.len(), 15);
        assert!(!d.is_empty());
        assert_eq!(d.num_classes(), 5);
        assert_eq!(d.images()[0].shape(), [3, 8, 8]);
        for (_, label) in d.iter() {
            assert!(label < 5);
        }
    }

    #[test]
    fn samples_of_same_class_are_similar() {
        let d = SyntheticDatasetBuilder::new(2, [1, 16, 16])
            .samples_per_class(2)
            .noise(5.0)
            .seed(3)
            .build()
            .unwrap();
        let dist = |a: &Tensor<i8>, b: &Tensor<i8>| -> f64 {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(&x, &y)| (f64::from(x) - f64::from(y)).abs())
                .sum::<f64>()
                / a.len() as f64
        };
        let same = dist(&d.images()[0], &d.images()[1]);
        let cross = dist(&d.images()[0], &d.images()[2]);
        assert!(
            same < cross,
            "same-class distance {same} should be below cross-class {cross}"
        );
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert!(SyntheticDatasetBuilder::new(0, [1, 4, 4]).build().is_err());
        assert!(SyntheticDatasetBuilder::new(2, [1, 4, 4])
            .samples_per_class(0)
            .build()
            .is_err());
        assert!(SyntheticDatasetBuilder::new(2, [0, 4, 4]).build().is_err());
    }

    #[test]
    fn dataset_validation() {
        let img = Tensor::<i8>::zeros([1, 2, 2]);
        assert!(Dataset::new(vec![img.clone()], vec![0, 1], 2).is_err());
        assert!(Dataset::new(vec![], vec![], 2).is_err());
        assert!(Dataset::new(vec![img.clone()], vec![5], 2).is_err());
        let ok = Dataset::new(vec![img], vec![1], 2).unwrap();
        assert_eq!(ok.labels(), &[1]);
    }

    #[test]
    fn take_subsets_dataset() {
        let d = SyntheticDatasetBuilder::new(3, [1, 4, 4])
            .samples_per_class(4)
            .build()
            .unwrap();
        assert_eq!(d.take(5).len(), 5);
        assert_eq!(d.take(100).len(), 12);
        assert_eq!(d.take(0).len(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDatasetBuilder::new(3, [1, 6, 6])
            .seed(9)
            .build()
            .unwrap();
        let b = SyntheticDatasetBuilder::new(3, [1, 6, 6])
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(a, b);
    }
}
