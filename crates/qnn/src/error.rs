//! Error type for the quantized-NN substrate.

use std::error::Error;
use std::fmt;

/// Errors reported by the quantized-NN substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QnnError {
    /// A tensor's shape does not match what the operation expects.
    ShapeMismatch {
        /// Description of the mismatch.
        reason: String,
    },
    /// A layer or model was configured inconsistently.
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// A dataset is empty or inconsistent with the model.
    InvalidDataset {
        /// Description of the problem.
        reason: String,
    },
}

impl QnnError {
    /// Convenience constructor for shape mismatches.
    pub fn shape(reason: impl Into<String>) -> Self {
        QnnError::ShapeMismatch {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for configuration errors.
    pub fn config(reason: impl Into<String>) -> Self {
        QnnError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for dataset errors.
    pub fn dataset(reason: impl Into<String>) -> Self {
        QnnError::InvalidDataset {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for QnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QnnError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            QnnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            QnnError::InvalidDataset { reason } => write!(f, "invalid dataset: {reason}"),
        }
    }
}

impl Error for QnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        assert!(QnnError::shape("got 3 dims").to_string().contains("3 dims"));
        assert!(QnnError::config("bad stride")
            .to_string()
            .contains("bad stride"));
        assert!(QnnError::dataset("empty").to_string().contains("empty"));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<QnnError>();
    }
}
