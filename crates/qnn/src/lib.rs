//! Quantized (int8) convolutional-neural-network inference substrate.
//!
//! The READ paper evaluates its dataflow optimization on VGG-16, ResNet-18
//! and ResNet-34, quantized to 8-bit weights and activations, and measures
//! accuracy under timing-error injection.  This crate provides everything
//! needed to reproduce that pipeline without external frameworks or trained
//! checkpoints:
//!
//! * [`tensor`] / [`quant`] — NCHW integer tensors and symmetric int8
//!   quantization with 32-bit accumulators, matching the accelerator's
//!   datapath (8-bit operands, 24-bit partial sums).
//! * [`layers`] — convolution, linear, ReLU, pooling and residual blocks.
//! * [`model`] / [`models`] — a sequential-with-residuals model container
//!   and builders for the paper's networks (optionally width-scaled so the
//!   error-injection experiments run at laptop scale).
//! * [`init`] / [`data`] / [`fit`] — synthetic "trained" weights
//!   (He-initialised, realistically sign-balanced), synthetic class-
//!   prototype datasets, and a closed-form classifier-head fit that brings
//!   clean accuracy into the realistic range.
//! * [`fault`] — the paper's error-injection protocol: flip accumulator
//!   bits of the pre-activation outputs at the per-layer BER derived from
//!   the measured TER, then measure top-1/top-k accuracy.
//!
//! # Example
//!
//! ```
//! use qnn::{models, Dataset, FaultConfig, SyntheticDatasetBuilder};
//!
//! # fn main() -> Result<(), qnn::QnnError> {
//! // A small width-scaled VGG-style network and a matching dataset.
//! let mut model = models::vgg11_cifar_scaled(8, 10, 1)?;
//! let dataset = SyntheticDatasetBuilder::new(10, [3, 32, 32])
//!     .samples_per_class(2)
//!     .seed(7)
//!     .build()?;
//! qnn::fit::fit_classifier_head(&mut model, &dataset)?;
//! let clean = qnn::fault::evaluate(&model, &dataset, &FaultConfig::clean())?;
//! assert!(clean.top1 >= 0.0 && clean.top1 <= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod error;
pub mod fault;
pub mod fit;
pub mod init;
pub mod layers;
pub mod model;
pub mod models;
pub mod quant;
pub mod tensor;

pub use data::{Dataset, SyntheticDatasetBuilder};
pub use error::QnnError;
pub use fault::{evaluate, Accuracy, FaultConfig, FlipModel};
pub use model::{LayerKind, Model};
pub use quant::QuantParams;
pub use tensor::Tensor;
