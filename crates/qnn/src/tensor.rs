//! Minimal CHW / NCHW integer tensors.
//!
//! The inference substrate works on per-image CHW tensors (batching is done
//! by looping over images), with `i8` activations and `i32` accumulators.

use crate::error::QnnError;

/// A dense 3-dimensional (channels x height x width) tensor.
///
/// # Example
///
/// ```
/// use qnn::Tensor;
///
/// let t = Tensor::from_fn([2, 3, 3], |c, y, x| (c * 9 + y * 3 + x) as i8);
/// assert_eq!(t.get(1, 2, 2), 17);
/// assert_eq!(t.len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tensor<T> {
    shape: [usize; 3],
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a zero-filled tensor of shape `[channels, height, width]`.
    pub fn zeros(shape: [usize; 3]) -> Self {
        Tensor {
            shape,
            data: vec![T::default(); shape[0] * shape[1] * shape[2]],
        }
    }

    /// Creates a tensor by evaluating `f(channel, y, x)` for every element.
    pub fn from_fn(shape: [usize; 3], mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(shape[0] * shape[1] * shape[2]);
        for c in 0..shape[0] {
            for y in 0..shape[1] {
                for x in 0..shape[2] {
                    data.push(f(c, y, x));
                }
            }
        }
        Tensor { shape, data }
    }

    /// Creates a tensor from a flat CHW data vector.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] when `data.len()` does not equal
    /// the product of the shape.
    pub fn from_vec(shape: [usize; 3], data: Vec<T>) -> Result<Self, QnnError> {
        let expected = shape[0] * shape[1] * shape[2];
        if data.len() != expected {
            return Err(QnnError::shape(format!(
                "data length {} != {}x{}x{}",
                data.len(),
                shape[0],
                shape[1],
                shape[2]
            )));
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor shape `[channels, height, width]`.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.shape[0]
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.shape[1]
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.shape[2]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> T {
        debug_assert!(c < self.shape[0] && y < self.shape[1] && x < self.shape[2]);
        self.data[(c * self.shape[1] + y) * self.shape[2] + x]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: T) {
        debug_assert!(c < self.shape[0] && y < self.shape[1] && x < self.shape[2]);
        self.data[(c * self.shape[1] + y) * self.shape[2] + x] = value;
    }

    /// Borrow the flat CHW storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the flat CHW storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat CHW storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Maps every element through `f`, producing a tensor of a new element
    /// type with the same shape.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::<i8>::zeros([2, 2, 2]);
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
        t.set(1, 1, 1, 7);
        assert_eq!(t.get(1, 1, 1), 7);
        assert_eq!(t.get(0, 0, 0), 0);
        assert_eq!(t.shape(), [2, 2, 2]);
        assert_eq!(t.channels(), 2);
        assert_eq!(t.height(), 2);
        assert_eq!(t.width(), 2);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([1, 2, 2], vec![1i8, 2, 3]).is_err());
        let t = Tensor::from_vec([1, 2, 2], vec![1i8, 2, 3, 4]).unwrap();
        assert_eq!(t.get(0, 1, 0), 3);
    }

    #[test]
    fn from_fn_layout_is_chw() {
        let t = Tensor::from_fn([2, 2, 3], |c, y, x| (c * 100 + y * 10 + x) as i32);
        assert_eq!(t.get(1, 1, 2), 112);
        assert_eq!(t.as_slice()[0], 0);
        assert_eq!(t.as_slice()[6], 100);
    }

    #[test]
    fn map_converts_element_type() {
        let t = Tensor::from_fn([1, 2, 2], |_, y, x| (y * 2 + x) as i8);
        let wide = t.map(i32::from);
        assert_eq!(wide.get(0, 1, 1), 3);
        assert_eq!(wide.shape(), t.shape());
    }

    #[test]
    fn into_vec_round_trip() {
        let t = Tensor::from_fn([1, 1, 4], |_, _, x| x as i8);
        let v = t.clone().into_vec();
        assert_eq!(v, vec![0, 1, 2, 3]);
        let back = Tensor::from_vec([1, 1, 4], v).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_tensor() {
        let t = Tensor::<i8>::zeros([0, 4, 4]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
