//! The paper's error-injection protocol: flip accumulator bits of the
//! pre-activation convolution outputs at the per-layer BER derived from the
//! measured TER, then measure top-1 / top-k accuracy.

use accel_sim::ACC_BITS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Dataset;
use crate::error::QnnError;
use crate::model::{ConvFaultHook, Model};

/// Which accumulator bit a timing error corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FlipModel {
    /// Always flip the most significant (sign) bit — the worst case the
    /// paper highlights.
    MostSignificant,
    /// Flip a bit chosen uniformly from the top `n` bits of the 24-bit
    /// accumulator (timing errors land in the upper carry-chain bits).
    UniformTop(u32),
    /// Flip a bit chosen uniformly over the whole accumulator width.
    UniformAll,
}

impl Default for FlipModel {
    fn default() -> Self {
        FlipModel::UniformTop(8)
    }
}

/// Per-layer bit-error-rate specification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BerSpec {
    /// No errors anywhere (the Ideal corner).
    Clean,
    /// The same BER for every convolution layer.
    Uniform(f64),
    /// One BER per convolution layer, in execution order.  Layers beyond the
    /// end of the vector receive zero BER (the paper injects errors only
    /// into the vulnerable early layers for the large networks).
    PerLayer(Vec<f64>),
}

/// Fault-injection configuration for one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Per-layer BER specification.
    pub bers: BerSpec,
    /// Bit-flip position model.
    pub flip: FlipModel,
    /// RNG seed (the paper repeats each configuration with several seeds).
    pub seed: u64,
}

impl FaultConfig {
    /// A configuration that injects no errors.
    pub fn clean() -> Self {
        FaultConfig {
            bers: BerSpec::Clean,
            flip: FlipModel::default(),
            seed: 0,
        }
    }

    /// The same BER for every convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not a finite value in `[0, 1]`.
    pub fn uniform(ber: f64, seed: u64) -> Self {
        assert!(
            ber.is_finite() && (0.0..=1.0).contains(&ber),
            "BER must be in [0, 1], got {ber}"
        );
        FaultConfig {
            bers: BerSpec::Uniform(ber),
            flip: FlipModel::default(),
            seed,
        }
    }

    /// One BER per convolution layer (execution order).
    ///
    /// # Panics
    ///
    /// Panics if any BER is not a finite value in `[0, 1]`.
    pub fn per_layer(bers: Vec<f64>, seed: u64) -> Self {
        assert!(
            bers.iter()
                .all(|b| b.is_finite() && (0.0..=1.0).contains(b)),
            "all BERs must be in [0, 1]"
        );
        FaultConfig {
            bers: BerSpec::PerLayer(bers),
            flip: FlipModel::default(),
            seed,
        }
    }

    /// Overrides the bit-flip model.
    pub fn with_flip(mut self, flip: FlipModel) -> Self {
        self.flip = flip;
        self
    }

    /// BER applied to convolution layer `index`.
    pub fn ber_for_layer(&self, index: usize) -> f64 {
        match &self.bers {
            BerSpec::Clean => 0.0,
            BerSpec::Uniform(b) => *b,
            BerSpec::PerLayer(v) => v.get(index).copied().unwrap_or(0.0),
        }
    }

    /// Returns `true` when the configuration can never inject an error.
    pub fn is_clean(&self) -> bool {
        match &self.bers {
            BerSpec::Clean => true,
            BerSpec::Uniform(b) => *b <= 0.0,
            BerSpec::PerLayer(v) => v.iter().all(|b| *b <= 0.0),
        }
    }
}

/// A live fault-injection session: implements the model's
/// [`ConvFaultHook`] and tracks how many errors were injected.
#[derive(Debug, Clone)]
pub struct FaultSession {
    config: FaultConfig,
    rng: StdRng,
    injected: u64,
    examined: u64,
}

impl FaultSession {
    /// Starts a session for the given configuration.
    pub fn new(config: FaultConfig) -> Self {
        let seed = config.seed;
        FaultSession {
            config,
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
            examined: 0,
        }
    }

    /// Number of accumulator values corrupted so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of accumulator values examined so far.
    pub fn examined(&self) -> u64 {
        self.examined
    }

    fn flip_bit(&mut self) -> u32 {
        match self.config.flip {
            FlipModel::MostSignificant => ACC_BITS - 1,
            FlipModel::UniformTop(n) => {
                let n = n.clamp(1, ACC_BITS);
                self.rng.gen_range(ACC_BITS - n..ACC_BITS)
            }
            FlipModel::UniformAll => self.rng.gen_range(0..ACC_BITS),
        }
    }
}

impl ConvFaultHook for FaultSession {
    fn corrupt(&mut self, conv_index: usize, acc: i32) -> i32 {
        self.examined += 1;
        let ber = self.config.ber_for_layer(conv_index);
        if ber <= 0.0 || self.rng.gen::<f64>() >= ber {
            return acc;
        }
        self.injected += 1;
        let bit = self.flip_bit();
        let mask: u32 = (1 << ACC_BITS) - 1;
        let raw = (acc as u32 ^ (1 << bit)) & mask;
        let shift = 32 - ACC_BITS;
        ((raw << shift) as i32) >> shift
    }
}

/// Accuracy of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Top-1 accuracy in `[0, 1]`.
    pub top1: f64,
    /// Top-k accuracy in `[0, 1]` (k given by [`Accuracy::k`]).
    pub topk: f64,
    /// The `k` used for the top-k figure.
    pub k: usize,
    /// Number of evaluated samples.
    pub samples: usize,
    /// Number of injected errors across the run.
    pub injected_errors: u64,
}

/// Evaluates a model on a dataset under fault injection, reporting top-1 and
/// top-3 accuracy (the paper's Fig. 11 metric).
///
/// # Errors
///
/// Returns [`QnnError::InvalidDataset`] for an empty dataset and propagates
/// forward-pass errors.
pub fn evaluate(
    model: &Model,
    dataset: &Dataset,
    config: &FaultConfig,
) -> Result<Accuracy, QnnError> {
    evaluate_topk(model, dataset, config, 3)
}

/// Evaluates a model on a dataset under fault injection with an explicit
/// top-k.
///
/// # Errors
///
/// Returns [`QnnError::InvalidDataset`] for an empty dataset or `k == 0`,
/// and propagates forward-pass errors.
pub fn evaluate_topk(
    model: &Model,
    dataset: &Dataset,
    config: &FaultConfig,
    k: usize,
) -> Result<Accuracy, QnnError> {
    if dataset.is_empty() {
        return Err(QnnError::dataset("cannot evaluate on an empty dataset"));
    }
    if k == 0 {
        return Err(QnnError::dataset("top-k requires k >= 1"));
    }
    let mut session = FaultSession::new(config.clone());
    let mut top1 = 0usize;
    let mut topk = 0usize;
    for (image, label) in dataset.iter() {
        let logits = model.forward_with_faults(image, &mut session)?;
        let ranking = Model::rank_classes(&logits);
        if ranking.first() == Some(&label) {
            top1 += 1;
        }
        if ranking.iter().take(k).any(|&c| c == label) {
            topk += 1;
        }
    }
    Ok(Accuracy {
        top1: top1 as f64 / dataset.len() as f64,
        topk: topk as f64 / dataset.len() as f64,
        k,
        samples: dataset.len(),
        injected_errors: session.injected(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDatasetBuilder;
    use crate::fit::fit_classifier_head;
    use crate::models;

    fn fitted_model_and_data() -> (Model, Dataset) {
        let mut model = models::vgg11_cifar_scaled(8, 5, 2).unwrap();
        let dataset = SyntheticDatasetBuilder::new(5, [3, 16, 16])
            .samples_per_class(3)
            .noise(8.0)
            .seed(21)
            .build()
            .unwrap();
        fit_classifier_head(&mut model, &dataset).unwrap();
        (model, dataset)
    }

    #[test]
    fn config_constructors() {
        assert!(FaultConfig::clean().is_clean());
        assert!(!FaultConfig::uniform(0.1, 0).is_clean());
        assert!(FaultConfig::uniform(0.0, 0).is_clean());
        let per = FaultConfig::per_layer(vec![0.0, 0.2], 0);
        assert!(!per.is_clean());
        assert_eq!(per.ber_for_layer(0), 0.0);
        assert_eq!(per.ber_for_layer(1), 0.2);
        assert_eq!(per.ber_for_layer(9), 0.0);
    }

    #[test]
    #[should_panic(expected = "BER must be in")]
    fn invalid_uniform_ber_panics() {
        let _ = FaultConfig::uniform(1.5, 0);
    }

    #[test]
    fn clean_evaluation_matches_predict() {
        let (model, dataset) = fitted_model_and_data();
        let acc = evaluate(&model, &dataset, &FaultConfig::clean()).unwrap();
        assert_eq!(acc.injected_errors, 0);
        assert!(acc.top1 > 0.4, "clean top1 {}", acc.top1);
        assert!(acc.topk >= acc.top1);
        assert_eq!(acc.samples, dataset.len());
    }

    #[test]
    fn heavy_errors_destroy_accuracy() {
        let (model, dataset) = fitted_model_and_data();
        let clean = evaluate(&model, &dataset, &FaultConfig::clean()).unwrap();
        let heavy = evaluate(
            &model,
            &dataset,
            &FaultConfig::uniform(0.5, 7).with_flip(FlipModel::MostSignificant),
        )
        .unwrap();
        assert!(heavy.injected_errors > 0);
        assert!(
            heavy.top1 <= clean.top1,
            "faulty accuracy {} should not exceed clean {}",
            heavy.top1,
            clean.top1
        );
    }

    #[test]
    fn accuracy_degrades_monotonically_in_expectation() {
        let (model, dataset) = fitted_model_and_data();
        let low = evaluate(&model, &dataset, &FaultConfig::uniform(0.001, 3)).unwrap();
        let high = evaluate(&model, &dataset, &FaultConfig::uniform(0.3, 3)).unwrap();
        assert!(high.injected_errors > low.injected_errors);
    }

    #[test]
    fn per_layer_bers_only_touch_listed_layers() {
        let (model, dataset) = fitted_model_and_data();
        // Errors only in layer 0.
        let cfg = FaultConfig::per_layer(vec![0.9], 5);
        let acc = evaluate(&model, &dataset, &cfg).unwrap();
        assert!(acc.injected_errors > 0);
    }

    #[test]
    fn evaluate_rejects_bad_inputs() {
        let (model, dataset) = fitted_model_and_data();
        assert!(evaluate_topk(&model, &dataset, &FaultConfig::clean(), 0).is_err());
    }

    #[test]
    fn seeds_change_injection_pattern_not_counts_wildly() {
        let (model, dataset) = fitted_model_and_data();
        let a = evaluate(&model, &dataset, &FaultConfig::uniform(0.05, 1)).unwrap();
        let b = evaluate(&model, &dataset, &FaultConfig::uniform(0.05, 2)).unwrap();
        let ratio = a.injected_errors.max(1) as f64 / b.injected_errors.max(1) as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }
}
