//! VGG-style networks.

use accel_sim::ConvShape;

use crate::error::QnnError;
use crate::init::WeightInit;
use crate::layers::Linear;
use crate::model::{LayerKind, Model};

use super::{scaled_channels, synthetic_conv};

/// VGG-16 channel plan for 32x32 (CIFAR) inputs: 13 convolution layers in
/// five stages separated by 2x2 max pooling.
const VGG16_PLAN: [&[usize]; 5] = [
    &[64, 64],
    &[128, 128],
    &[256, 256, 256],
    &[512, 512, 512],
    &[512, 512, 512],
];

/// VGG-11 channel plan (a lighter stand-in used for fast tests and doc
/// examples).
const VGG11_PLAN: [&[usize]; 5] = [&[64], &[128], &[256, 256], &[512, 512], &[512, 512]];

fn build_vgg(
    name: &str,
    plan: &[&[usize]],
    width_div: usize,
    num_classes: usize,
    seed: u64,
) -> Result<Model, QnnError> {
    if num_classes == 0 {
        return Err(QnnError::config("need at least one class"));
    }
    let mut init = WeightInit::new(seed);
    let mut layers = Vec::new();
    let mut in_channels = 3usize;
    let mut conv_id = 0usize;
    for (stage, widths) in plan.iter().enumerate() {
        for &w in widths.iter() {
            let out_channels = scaled_channels(w, width_div);
            conv_id += 1;
            layers.push(LayerKind::Conv {
                conv: synthetic_conv(
                    &format!("conv{}_{}", stage + 1, conv_id),
                    in_channels,
                    out_channels,
                    3,
                    1,
                    1,
                    &mut init,
                )?,
                relu: true,
            });
            in_channels = out_channels;
        }
        layers.push(LayerKind::MaxPool2);
    }
    layers.push(LayerKind::GlobalAvgPool);
    layers.push(LayerKind::Classifier(Linear::new(
        "fc",
        in_channels,
        num_classes,
        |_, _| init.weight(in_channels),
    )?));
    Model::new(name, layers)
}

/// A width-scaled VGG-16 for CIFAR-sized inputs with synthetic weights.
///
/// `width_div` divides every channel count (use 1 for the full-size
/// network); the accuracy benches use `width_div = 4` or more to keep the
/// error-injection sweeps fast.
///
/// # Errors
///
/// Returns [`QnnError::InvalidConfig`] if `num_classes` is zero.
pub fn vgg16_cifar_scaled(
    width_div: usize,
    num_classes: usize,
    seed: u64,
) -> Result<Model, QnnError> {
    build_vgg("vgg16-cifar", &VGG16_PLAN, width_div, num_classes, seed)
}

/// A width-scaled VGG-11 (lighter variant used by tests and examples).
///
/// # Errors
///
/// Returns [`QnnError::InvalidConfig`] if `num_classes` is zero.
pub fn vgg11_cifar_scaled(
    width_div: usize,
    num_classes: usize,
    seed: u64,
) -> Result<Model, QnnError> {
    build_vgg("vgg11-cifar", &VGG11_PLAN, width_div, num_classes, seed)
}

/// The full-size convolution shapes of VGG-16 on 32x32 inputs, in layer
/// order — the workload of the layer-wise TER experiments (Fig. 8).
pub fn vgg16_cifar_conv_shapes() -> Vec<(String, ConvShape)> {
    let mut shapes = Vec::new();
    let mut in_channels = 3usize;
    let mut hw = 32usize;
    let mut conv_id = 0usize;
    for (stage, widths) in VGG16_PLAN.iter().enumerate() {
        for &w in widths.iter() {
            conv_id += 1;
            shapes.push((
                format!("conv{}_{}", stage + 1, conv_id),
                ConvShape::new(1, in_channels, hw, hw, w, 3, 3, 1, 1)
                    .expect("static plan is valid"),
            ));
            in_channels = w;
        }
        hw /= 2;
    }
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn vgg16_full_plan_has_13_conv_layers() {
        let shapes = vgg16_cifar_conv_shapes();
        assert_eq!(shapes.len(), 13);
        assert_eq!(shapes[0].1.c, 3);
        assert_eq!(shapes[0].1.k, 64);
        assert_eq!(shapes[12].1.k, 512);
        // Spatial size shrinks with the pooling stages.
        assert_eq!(shapes[0].1.h, 32);
        assert_eq!(shapes[12].1.h, 2);
    }

    #[test]
    fn scaled_vgg16_builds_and_runs() {
        let model = vgg16_cifar_scaled(16, 10, 1).unwrap();
        assert_eq!(model.num_conv_layers(), 13);
        assert_eq!(model.num_classes(), 10);
        let input = Tensor::from_fn([3, 32, 32], |c, y, x| ((c + y + x) % 7) as i8);
        let logits = model.forward(&input).unwrap();
        assert_eq!(logits.len(), 10);
    }

    #[test]
    fn vgg11_is_smaller_than_vgg16() {
        let small = vgg11_cifar_scaled(16, 10, 1).unwrap();
        let big = vgg16_cifar_scaled(16, 10, 1).unwrap();
        assert!(small.num_conv_layers() < big.num_conv_layers());
    }

    #[test]
    fn zero_classes_rejected() {
        assert!(vgg16_cifar_scaled(8, 0, 1).is_err());
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let a = vgg11_cifar_scaled(16, 4, 1).unwrap();
        let b = vgg11_cifar_scaled(16, 4, 2).unwrap();
        assert_ne!(a.conv_layers()[0].weights(), b.conv_layers()[0].weights());
    }
}
