//! Model zoo: the networks evaluated in the paper (VGG-16, ResNet-18,
//! ResNet-34) plus smaller variants used by the laptop-scale error-injection
//! experiments.
//!
//! Two kinds of artifacts are provided:
//!
//! * **Shape lists** (`*_conv_shapes`) — the full-size convolution layer
//!   shapes of the paper's networks, used by the layer-wise TER experiments
//!   (Fig. 8), where only the weight matrices matter and no full inference
//!   is run.
//! * **Scaled executable models** (`*_scaled`) — width-divided versions of
//!   the same architectures with synthetic He-initialised weights, used by
//!   the accuracy-under-error-injection experiments (Figs. 10 and 11) where
//!   a real forward pass is required.

mod resnet;
mod vgg;

pub use resnet::{
    resnet18_cifar_conv_shapes, resnet18_cifar_scaled, resnet34_imagenet_conv_shapes,
    resnet34_imagenet_scaled,
};
pub use vgg::{vgg11_cifar_scaled, vgg16_cifar_conv_shapes, vgg16_cifar_scaled};

use crate::error::QnnError;
use crate::init::WeightInit;
use crate::layers::Conv2d;

/// Builds a convolution layer with synthetic He-initialised weights.
pub(crate) fn synthetic_conv(
    name: &str,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    init: &mut WeightInit,
) -> Result<Conv2d, QnnError> {
    let fan_in = in_channels * kernel * kernel;
    Conv2d::new(
        name,
        in_channels,
        out_channels,
        kernel,
        stride,
        padding,
        |_, _, _, _| init.weight(fan_in),
    )
}

/// Divides a channel count by the width divisor, keeping at least 4
/// channels so the scaled models stay structurally interesting.
pub(crate) fn scaled_channels(channels: usize, width_div: usize) -> usize {
    (channels / width_div.max(1)).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_channels_floors_at_four() {
        assert_eq!(scaled_channels(64, 8), 8);
        assert_eq!(scaled_channels(64, 64), 4);
        assert_eq!(scaled_channels(64, 0), 64);
        assert_eq!(scaled_channels(512, 4), 128);
    }

    #[test]
    fn synthetic_conv_uses_init() {
        let mut init = WeightInit::new(5);
        let conv = synthetic_conv("c", 3, 8, 3, 1, 1, &mut init).unwrap();
        let nonzero = conv.weights().iter().filter(|&&w| w != 0).count();
        assert!(nonzero > conv.weights().len() / 2);
    }
}
