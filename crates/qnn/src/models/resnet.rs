//! ResNet-style networks (basic blocks, CIFAR and ImageNet channel plans).

use accel_sim::ConvShape;

use crate::error::QnnError;
use crate::init::WeightInit;
use crate::layers::Linear;
use crate::model::{LayerKind, Model, ResidualBlock};

use super::{scaled_channels, synthetic_conv};

/// Stage widths shared by ResNet-18 and ResNet-34.
const STAGE_WIDTHS: [usize; 4] = [64, 128, 256, 512];
/// Blocks per stage for ResNet-18.
const RESNET18_BLOCKS: [usize; 4] = [2, 2, 2, 2];
/// Blocks per stage for ResNet-34.
const RESNET34_BLOCKS: [usize; 4] = [3, 4, 6, 3];

fn build_resnet(
    name: &str,
    blocks_per_stage: &[usize; 4],
    width_div: usize,
    num_classes: usize,
    seed: u64,
) -> Result<Model, QnnError> {
    if num_classes == 0 {
        return Err(QnnError::config("need at least one class"));
    }
    let mut init = WeightInit::new(seed);
    let mut layers = Vec::new();
    let stem_out = scaled_channels(STAGE_WIDTHS[0], width_div);
    layers.push(LayerKind::Conv {
        conv: synthetic_conv("stem", 3, stem_out, 3, 1, 1, &mut init)?,
        relu: true,
    });
    let mut in_channels = stem_out;
    for (stage, (&width, &blocks)) in STAGE_WIDTHS.iter().zip(blocks_per_stage).enumerate() {
        let out_channels = scaled_channels(width, width_div);
        for block in 0..blocks {
            // The first block of stages 2..4 downsamples spatially.
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let needs_projection = stride != 1 || in_channels != out_channels;
            let prefix = format!("layer{}_{}", stage + 1, block + 1);
            let conv1 = synthetic_conv(
                &format!("{prefix}_conv1"),
                in_channels,
                out_channels,
                3,
                stride,
                1,
                &mut init,
            )?;
            let conv2 = synthetic_conv(
                &format!("{prefix}_conv2"),
                out_channels,
                out_channels,
                3,
                1,
                1,
                &mut init,
            )?;
            let downsample = if needs_projection {
                Some(synthetic_conv(
                    &format!("{prefix}_down"),
                    in_channels,
                    out_channels,
                    1,
                    stride,
                    0,
                    &mut init,
                )?)
            } else {
                None
            };
            layers.push(LayerKind::Residual(ResidualBlock {
                conv1,
                conv2,
                downsample,
            }));
            in_channels = out_channels;
        }
    }
    layers.push(LayerKind::GlobalAvgPool);
    layers.push(LayerKind::Classifier(Linear::new(
        "fc",
        in_channels,
        num_classes,
        |_, _| init.weight(in_channels),
    )?));
    Model::new(name, layers)
}

/// A width-scaled ResNet-18 for CIFAR-sized inputs with synthetic weights.
///
/// # Errors
///
/// Returns [`QnnError::InvalidConfig`] if `num_classes` is zero.
pub fn resnet18_cifar_scaled(
    width_div: usize,
    num_classes: usize,
    seed: u64,
) -> Result<Model, QnnError> {
    build_resnet(
        "resnet18-cifar",
        &RESNET18_BLOCKS,
        width_div,
        num_classes,
        seed,
    )
}

/// A width-scaled ResNet-34 (ImageNet channel plan) with synthetic weights.
///
/// The executable variant accepts any input resolution (global average
/// pooling absorbs the spatial size); the accuracy benches feed reduced
/// resolution inputs to keep runtime laptop-scale.
///
/// # Errors
///
/// Returns [`QnnError::InvalidConfig`] if `num_classes` is zero.
pub fn resnet34_imagenet_scaled(
    width_div: usize,
    num_classes: usize,
    seed: u64,
) -> Result<Model, QnnError> {
    build_resnet(
        "resnet34-imagenet",
        &RESNET34_BLOCKS,
        width_div,
        num_classes,
        seed,
    )
}

fn conv_shapes(
    blocks_per_stage: &[usize; 4],
    input_hw: usize,
    include_downsample: bool,
) -> Vec<(String, ConvShape)> {
    let mut shapes = Vec::new();
    let mut hw = input_hw;
    shapes.push((
        "stem".to_string(),
        ConvShape::new(1, 3, hw, hw, STAGE_WIDTHS[0], 3, 3, 1, 1).expect("static plan is valid"),
    ));
    let mut in_channels = STAGE_WIDTHS[0];
    for (stage, (&width, &blocks)) in STAGE_WIDTHS.iter().zip(blocks_per_stage).enumerate() {
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let prefix = format!("layer{}_{}", stage + 1, block + 1);
            shapes.push((
                format!("{prefix}_conv1"),
                ConvShape::new(1, in_channels, hw, hw, width, 3, 3, stride, 1)
                    .expect("static plan is valid"),
            ));
            if stride == 2 {
                hw /= 2;
            }
            shapes.push((
                format!("{prefix}_conv2"),
                ConvShape::new(1, width, hw, hw, width, 3, 3, 1, 1).expect("static plan is valid"),
            ));
            if include_downsample && (stride != 1 || in_channels != width) {
                shapes.push((
                    format!("{prefix}_down"),
                    ConvShape::new(
                        1,
                        in_channels,
                        hw * stride,
                        hw * stride,
                        width,
                        1,
                        1,
                        stride,
                        0,
                    )
                    .expect("static plan is valid"),
                ));
            }
            in_channels = width;
        }
    }
    shapes
}

/// The full-size convolution shapes of ResNet-18 on 32x32 (CIFAR) inputs,
/// main-path convolutions only — the 17-layer workload of Fig. 8.
pub fn resnet18_cifar_conv_shapes() -> Vec<(String, ConvShape)> {
    conv_shapes(&RESNET18_BLOCKS, 32, false)
}

/// The full-size convolution shapes of ResNet-34 on 224x224 (ImageNet)
/// inputs, main-path convolutions only.
pub fn resnet34_imagenet_conv_shapes() -> Vec<(String, ConvShape)> {
    conv_shapes(&RESNET34_BLOCKS, 224, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn resnet18_shape_list_matches_paper_layer_count() {
        // Fig. 8 sweeps 17 ResNet-18 layers: the stem plus 8 basic blocks x
        // 2 main-path convolutions.
        let shapes = resnet18_cifar_conv_shapes();
        assert_eq!(shapes.len(), 17);
        assert_eq!(shapes[0].1.c, 3);
        assert_eq!(shapes.last().unwrap().1.k, 512);
    }

    #[test]
    fn resnet34_shape_list_has_33_main_convs() {
        let shapes = resnet34_imagenet_conv_shapes();
        assert_eq!(shapes.len(), 1 + 2 * (3 + 4 + 6 + 3));
        assert_eq!(shapes[0].1.h, 224);
    }

    #[test]
    fn scaled_resnet18_builds_and_runs() {
        let model = resnet18_cifar_scaled(16, 10, 2).unwrap();
        // stem + 8 blocks x 2 convs + 3 downsample projections = 20.
        assert_eq!(model.num_conv_layers(), 20);
        let input = Tensor::from_fn([3, 32, 32], |c, y, x| ((c * 5 + y + x) % 6) as i8);
        let logits = model.forward(&input).unwrap();
        assert_eq!(logits.len(), 10);
    }

    #[test]
    fn scaled_resnet34_has_more_blocks_than_resnet18() {
        let r18 = resnet18_cifar_scaled(32, 5, 1).unwrap();
        let r34 = resnet34_imagenet_scaled(32, 5, 1).unwrap();
        assert!(r34.num_conv_layers() > r18.num_conv_layers());
        let input = Tensor::from_fn([3, 16, 16], |c, y, x| ((c + y * x) % 5) as i8);
        assert_eq!(r34.forward(&input).unwrap().len(), 5);
    }

    #[test]
    fn zero_classes_rejected() {
        assert!(resnet18_cifar_scaled(8, 0, 1).is_err());
    }

    #[test]
    fn downsample_spatial_sizes_are_consistent() {
        let shapes = conv_shapes(&RESNET18_BLOCKS, 32, true);
        for (name, shape) in &shapes {
            assert!(shape.out_h() >= 1, "{name} collapsed to zero height");
        }
        // With downsample projections included the count grows by 3.
        assert_eq!(shapes.len(), 20);
    }
}
