//! Symmetric int8 quantization helpers.
//!
//! The substrate mirrors the accelerator datapath: activations and weights
//! are 8-bit signed integers, accumulators are 32-bit (with the low 24 bits
//! mapping onto the hardware accumulator), and each layer requantizes its
//! accumulator outputs back to int8 with a per-layer scale.

use crate::error::QnnError;

/// Per-tensor symmetric quantization parameters: `real = scale * quantized`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real value represented by one integer step.
    pub scale: f32,
}

impl QuantParams {
    /// Creates quantization parameters with the given scale.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidConfig`] if the scale is not a positive
    /// finite number.
    pub fn new(scale: f32) -> Result<Self, QnnError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(QnnError::config(format!(
                "quantization scale must be positive and finite, got {scale}"
            )));
        }
        Ok(QuantParams { scale })
    }

    /// Chooses a scale that maps `max_abs` onto the int8 limit.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidConfig`] if `max_abs` is not positive.
    pub fn from_max_abs(max_abs: f32) -> Result<Self, QnnError> {
        Self::new(max_abs / 127.0)
    }

    /// Quantizes a real value to int8 (round-to-nearest, saturating).
    pub fn quantize(&self, value: f32) -> i8 {
        clamp_i8((value / self.scale).round())
    }

    /// Dequantizes an int8 value back to a real value.
    pub fn dequantize(&self, value: i8) -> f32 {
        f32::from(value) * self.scale
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        QuantParams { scale: 1.0 / 127.0 }
    }
}

/// Saturating conversion of a rounded float to int8.
pub fn clamp_i8(value: f32) -> i8 {
    if value >= 127.0 {
        127
    } else if value <= -128.0 {
        -128
    } else {
        value as i8
    }
}

/// Requantizes a 32-bit accumulator value to int8 with the given output
/// scale (`out = clamp(round(acc * scale))`).
#[inline]
pub fn requantize(acc: i32, scale: f32) -> i8 {
    clamp_i8((acc as f32 * scale).round())
}

/// Rectified linear unit on an int8 value.
#[inline]
pub fn relu_i8(value: i8) -> i8 {
    value.max(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trip_within_one_step() {
        let q = QuantParams::from_max_abs(2.0).unwrap();
        for &v in &[-2.0f32, -1.3, -0.01, 0.0, 0.5, 1.99] {
            let dq = q.dequantize(q.quantize(v));
            assert!((dq - v).abs() <= q.scale, "v={v} dq={dq}");
        }
    }

    #[test]
    fn quantize_saturates() {
        let q = QuantParams::from_max_abs(1.0).unwrap();
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -128);
    }

    #[test]
    fn invalid_scales_rejected() {
        assert!(QuantParams::new(0.0).is_err());
        assert!(QuantParams::new(-1.0).is_err());
        assert!(QuantParams::new(f32::NAN).is_err());
        assert!(QuantParams::from_max_abs(0.0).is_err());
    }

    #[test]
    fn requantize_behaviour() {
        assert_eq!(requantize(1000, 0.1), 100);
        assert_eq!(requantize(10_000, 0.1), 127);
        assert_eq!(requantize(-10_000, 0.1), -128);
        assert_eq!(requantize(0, 0.5), 0);
        assert_eq!(requantize(-6, 0.5), -3);
    }

    #[test]
    fn relu_clamps_negative_values() {
        assert_eq!(relu_i8(-5), 0);
        assert_eq!(relu_i8(0), 0);
        assert_eq!(relu_i8(17), 17);
    }

    #[test]
    fn clamp_edges() {
        assert_eq!(clamp_i8(127.4), 127);
        assert_eq!(clamp_i8(-128.4), -128);
        assert_eq!(clamp_i8(126.6), 126);
    }
}
