//! Model container: a sequence of layers (with residual blocks) ending in a
//! classifier head.

use crate::error::QnnError;
use crate::layers::{global_avg_pool, max_pool2, Conv2d, Linear};
use crate::tensor::Tensor;

/// A ResNet-style basic block: two 3x3 convolutions with a shortcut
/// connection (optionally a 1x1 strided downsample convolution).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualBlock {
    /// First convolution (followed by ReLU).
    pub conv1: Conv2d,
    /// Second convolution (no activation before the shortcut add).
    pub conv2: Conv2d,
    /// Optional shortcut projection when the shape changes.
    pub downsample: Option<Conv2d>,
}

/// One stage of a [`Model`].
// Residual blocks dwarf the pooling variants by design; models hold few
// layers, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LayerKind {
    /// Convolution, optionally followed by ReLU.
    Conv {
        /// The convolution layer.
        conv: Conv2d,
        /// Whether a ReLU follows the convolution.
        relu: bool,
    },
    /// 2x2 max pooling with stride 2.
    MaxPool2,
    /// Global average pooling (produces the feature vector).
    GlobalAvgPool,
    /// Residual basic block.
    Residual(ResidualBlock),
    /// Final classifier: flattens the current features and produces logits.
    Classifier(Linear),
}

/// Receives every convolution-layer accumulator during a faulty forward
/// pass; implementations inject bit flips at the configured BER.
pub trait ConvFaultHook {
    /// Possibly corrupts the accumulator value of convolution layer
    /// `conv_index` (execution order).
    fn corrupt(&mut self, conv_index: usize, acc: i32) -> i32;
}

/// A no-fault hook.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl ConvFaultHook for NoFaults {
    fn corrupt(&mut self, _conv_index: usize, acc: i32) -> i32 {
        acc
    }
}

/// Intermediate feature state while running a model.
enum Features {
    Map(Tensor<i8>),
    Vector(Vec<i8>),
}

impl Features {
    fn into_vector(self) -> Vec<i8> {
        match self {
            Features::Map(t) => t.into_vec(),
            Features::Vector(v) => v,
        }
    }

    fn as_map(&self) -> Result<&Tensor<i8>, QnnError> {
        match self {
            Features::Map(t) => Ok(t),
            Features::Vector(_) => Err(QnnError::shape(
                "expected a spatial feature map but found a flattened vector",
            )),
        }
    }
}

/// A quantized CNN: a sequence of [`LayerKind`] stages ending in a
/// classifier.
///
/// # Example
///
/// ```
/// use qnn::layers::{Conv2d, Linear};
/// use qnn::{LayerKind, Model, Tensor};
///
/// # fn main() -> Result<(), qnn::QnnError> {
/// let layers = vec![
///     LayerKind::Conv {
///         conv: Conv2d::new("conv1", 1, 4, 3, 1, 1, |_, _, _, _| 1)?,
///         relu: true,
///     },
///     LayerKind::GlobalAvgPool,
///     LayerKind::Classifier(Linear::new("fc", 4, 3, |o, i| (o == i) as i8)?),
/// ];
/// let model = Model::new("tiny", layers)?;
/// let input = Tensor::from_fn([1, 8, 8], |_, y, x| ((y + x) % 3) as i8);
/// let logits = model.forward(&input)?;
/// assert_eq!(logits.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: String,
    layers: Vec<LayerKind>,
    num_classes: usize,
}

impl Model {
    /// Creates a model from a stage list.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidConfig`] unless the last stage (and only
    /// the last stage) is a [`LayerKind::Classifier`].
    pub fn new(name: impl Into<String>, layers: Vec<LayerKind>) -> Result<Self, QnnError> {
        let classifier_positions: Vec<usize> = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, LayerKind::Classifier(_)))
            .map(|(i, _)| i)
            .collect();
        match (classifier_positions.as_slice(), layers.len()) {
            ([last], n) if *last == n - 1 => {}
            _ => {
                return Err(QnnError::config(
                    "a model must contain exactly one classifier, as its final stage",
                ))
            }
        }
        let num_classes = match layers.last() {
            Some(LayerKind::Classifier(linear)) => linear.out_features(),
            _ => unreachable!("validated above"),
        };
        Ok(Model {
            name: name.into(),
            layers,
            num_classes,
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrow the stage list.
    pub fn layers(&self) -> &[LayerKind] {
        &self.layers
    }

    /// The convolution layers in execution order (residual blocks contribute
    /// `conv1`, `conv2`, then the optional downsample projection).
    pub fn conv_layers(&self) -> Vec<&Conv2d> {
        let mut convs = Vec::new();
        for layer in &self.layers {
            match layer {
                LayerKind::Conv { conv, .. } => convs.push(conv),
                LayerKind::Residual(block) => {
                    convs.push(&block.conv1);
                    convs.push(&block.conv2);
                    if let Some(ds) = &block.downsample {
                        convs.push(ds);
                    }
                }
                _ => {}
            }
        }
        convs
    }

    /// Mutable access to the convolution layers in execution order.
    pub fn conv_layers_mut(&mut self) -> Vec<&mut Conv2d> {
        let mut convs = Vec::new();
        for layer in &mut self.layers {
            match layer {
                LayerKind::Conv { conv, .. } => convs.push(conv),
                LayerKind::Residual(block) => {
                    convs.push(&mut block.conv1);
                    convs.push(&mut block.conv2);
                    if let Some(ds) = &mut block.downsample {
                        convs.push(ds);
                    }
                }
                _ => {}
            }
        }
        convs
    }

    /// Number of convolution layers (the per-layer BER vector must have this
    /// length).
    pub fn num_conv_layers(&self) -> usize {
        self.conv_layers().len()
    }

    /// Mutable access to the classifier head.
    pub fn classifier_mut(&mut self) -> &mut Linear {
        match self.layers.last_mut() {
            Some(LayerKind::Classifier(linear)) => linear,
            _ => unreachable!("constructor guarantees a classifier tail"),
        }
    }

    /// The classifier head.
    pub fn classifier(&self) -> &Linear {
        match self.layers.last() {
            Some(LayerKind::Classifier(linear)) => linear,
            _ => unreachable!("constructor guarantees a classifier tail"),
        }
    }

    /// Fault-free forward pass producing the class logits.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] when the input does not match the
    /// first layer.
    pub fn forward(&self, input: &Tensor<i8>) -> Result<Vec<i32>, QnnError> {
        self.forward_with_faults(input, &mut NoFaults)
    }

    /// Forward pass with a fault hook applied to every convolution
    /// accumulator (the paper's error-injection point).
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] when tensor shapes do not match
    /// the layer configuration.
    pub fn forward_with_faults(
        &self,
        input: &Tensor<i8>,
        faults: &mut dyn ConvFaultHook,
    ) -> Result<Vec<i32>, QnnError> {
        let features = self.run_feature_stages(input, faults)?;
        self.classifier().forward(&features.into_vector())
    }

    /// The penultimate (pre-classifier) feature vector of a fault-free pass,
    /// used to fit the classifier head.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] when the input does not match the
    /// model.
    pub fn penultimate_features(&self, input: &Tensor<i8>) -> Result<Vec<i8>, QnnError> {
        Ok(self.run_feature_stages(input, &mut NoFaults)?.into_vector())
    }

    /// Predicted class (arg-max of the logits).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predict(&self, input: &Tensor<i8>) -> Result<usize, QnnError> {
        let logits = self.forward(input)?;
        Ok(argmax(&logits))
    }

    /// The classes ranked by decreasing logit.
    pub fn rank_classes(logits: &[i32]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..logits.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(logits[i]));
        order
    }

    /// Calibrates the requantization scale of every convolution layer so the
    /// observed accumulator range of the calibration images maps onto int8.
    ///
    /// Calibration proceeds layer by layer (standard post-training
    /// quantization): each convolution's scale is chosen from the
    /// accumulator range it sees *after* all earlier layers have already
    /// been calibrated, so deep networks neither saturate nor collapse to
    /// zero.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidDataset`] when `images` is empty, or
    /// shape errors when an image does not match the model.
    pub fn calibrate(&mut self, images: &[Tensor<i8>]) -> Result<(), QnnError> {
        if images.is_empty() {
            return Err(QnnError::dataset("calibration requires at least one image"));
        }
        let mut maps: Vec<Tensor<i8>> = images.to_vec();

        // Calibrates one convolution on the current feature maps and returns
        // its outputs computed with the freshly chosen scale.
        fn calibrate_conv(
            conv: &mut Conv2d,
            inputs: &[Tensor<i8>],
            relu: bool,
        ) -> Result<Vec<Tensor<i8>>, QnnError> {
            let mut max_abs = 1i32;
            let mut accumulators = Vec::with_capacity(inputs.len());
            for input in inputs {
                let acc = conv.forward_accumulators(input)?;
                for &v in acc.as_slice() {
                    max_abs = max_abs.max(v.saturating_abs());
                }
                accumulators.push(acc);
            }
            conv.set_out_scale(127.0 / max_abs.max(1) as f32)?;
            let scale = conv.out_scale();
            Ok(accumulators
                .into_iter()
                .map(|acc| {
                    acc.map(|v| {
                        let q = crate::quant::requantize(v, scale);
                        if relu {
                            q.max(0)
                        } else {
                            q
                        }
                    })
                })
                .collect())
        }

        for layer in &mut self.layers {
            match layer {
                LayerKind::Conv { conv, relu } => {
                    maps = calibrate_conv(conv, &maps, *relu)?;
                }
                LayerKind::MaxPool2 => {
                    let mut next = Vec::with_capacity(maps.len());
                    for map in &maps {
                        if map.height() < 2 || map.width() < 2 {
                            next.push(map.clone());
                        } else {
                            next.push(max_pool2(map)?);
                        }
                    }
                    maps = next;
                }
                LayerKind::Residual(block) => {
                    let hidden = calibrate_conv(&mut block.conv1, &maps, true)?;
                    let main = calibrate_conv(&mut block.conv2, &hidden, false)?;
                    let shortcuts = match &mut block.downsample {
                        Some(ds) => calibrate_conv(ds, &maps, false)?,
                        None => maps.clone(),
                    };
                    let mut next = Vec::with_capacity(maps.len());
                    for (m, s) in main.into_iter().zip(&shortcuts) {
                        let mut sum = m.clone();
                        for (o, (a, b)) in sum
                            .as_mut_slice()
                            .iter_mut()
                            .zip(m.as_slice().iter().zip(s.as_slice()))
                        {
                            *o = a.saturating_add(*b).max(0);
                        }
                        next.push(sum);
                    }
                    maps = next;
                }
                LayerKind::GlobalAvgPool | LayerKind::Classifier(_) => break,
            }
        }
        Ok(())
    }

    fn run_feature_stages(
        &self,
        input: &Tensor<i8>,
        faults: &mut dyn ConvFaultHook,
    ) -> Result<Features, QnnError> {
        let mut features = Features::Map(input.clone());
        let mut conv_index = 0usize;
        for layer in &self.layers {
            features = match layer {
                LayerKind::Conv { conv, relu } => {
                    let map = features.as_map()?;
                    let idx = conv_index;
                    conv_index += 1;
                    let mut hook = |acc: i32| faults.corrupt(idx, acc);
                    Features::Map(conv.forward_with(map, *relu, &mut hook)?)
                }
                LayerKind::MaxPool2 => {
                    let map = features.as_map()?;
                    if map.height() < 2 || map.width() < 2 {
                        // Feature map already collapsed to a single pixel
                        // (small inputs through a deep plan): pooling is a
                        // no-op rather than an error.
                        Features::Map(map.clone())
                    } else {
                        Features::Map(max_pool2(map)?)
                    }
                }
                LayerKind::GlobalAvgPool => Features::Vector(global_avg_pool(features.as_map()?)?),
                LayerKind::Residual(block) => {
                    let map = features.as_map()?;
                    let idx1 = conv_index;
                    let idx2 = conv_index + 1;
                    conv_index += 2;
                    let mut hook1 = |acc: i32| faults.corrupt(idx1, acc);
                    let hidden = block.conv1.forward_with(map, true, &mut hook1)?;
                    let mut hook2 = |acc: i32| faults.corrupt(idx2, acc);
                    let main = block.conv2.forward_with(&hidden, false, &mut hook2)?;
                    let shortcut = match &block.downsample {
                        Some(ds) => {
                            let idx3 = conv_index;
                            conv_index += 1;
                            let mut hook3 = |acc: i32| faults.corrupt(idx3, acc);
                            ds.forward_with(map, false, &mut hook3)?
                        }
                        None => map.clone(),
                    };
                    if shortcut.shape() != main.shape() {
                        return Err(QnnError::shape(format!(
                            "residual shapes differ: {:?} vs {:?}",
                            shortcut.shape(),
                            main.shape()
                        )));
                    }
                    let mut sum = main.clone();
                    for (s, (m, sc)) in sum
                        .as_mut_slice()
                        .iter_mut()
                        .zip(main.as_slice().iter().zip(shortcut.as_slice()))
                    {
                        *s = m.saturating_add(*sc).max(0);
                    }
                    Features::Map(sum)
                }
                LayerKind::Classifier(_) => break,
            };
        }
        Ok(features)
    }
}

/// Index of the maximum logit (ties resolve to the first maximum).
pub fn argmax(logits: &[i32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by_key(|(i, &v)| (v, std::cmp::Reverse(*i)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> Model {
        let layers = vec![
            LayerKind::Conv {
                conv: Conv2d::new("c1", 1, 4, 3, 1, 1, |k, c, dy, dx| {
                    (((k * 3 + c + dy + dx) % 5) as i8) - 2
                })
                .unwrap(),
                relu: true,
            },
            LayerKind::MaxPool2,
            LayerKind::Conv {
                conv: Conv2d::new("c2", 4, 8, 3, 1, 1, |k, c, dy, dx| {
                    (((k + c * 2 + dy + dx) % 7) as i8) - 3
                })
                .unwrap(),
                relu: true,
            },
            LayerKind::GlobalAvgPool,
            LayerKind::Classifier(Linear::new("fc", 8, 3, |o, i| ((o + i) % 3) as i8 - 1).unwrap()),
        ];
        Model::new("tiny", layers).unwrap()
    }

    fn residual_model() -> Model {
        let block = ResidualBlock {
            conv1: Conv2d::new("b1c1", 4, 4, 3, 1, 1, |k, c, _, _| ((k + c) % 3) as i8 - 1)
                .unwrap(),
            conv2: Conv2d::new("b1c2", 4, 4, 3, 1, 1, |k, c, _, _| ((k * c) % 3) as i8 - 1)
                .unwrap(),
            downsample: None,
        };
        let strided = ResidualBlock {
            conv1: Conv2d::new("b2c1", 4, 8, 3, 2, 1, |_, _, _, _| 1).unwrap(),
            conv2: Conv2d::new("b2c2", 8, 8, 3, 1, 1, |_, _, _, _| 1).unwrap(),
            downsample: Some(Conv2d::new("b2ds", 4, 8, 1, 2, 0, |_, _, _, _| 1).unwrap()),
        };
        let layers = vec![
            LayerKind::Conv {
                conv: Conv2d::new("stem", 1, 4, 3, 1, 1, |_, _, _, _| 1).unwrap(),
                relu: true,
            },
            LayerKind::Residual(block),
            LayerKind::Residual(strided),
            LayerKind::GlobalAvgPool,
            LayerKind::Classifier(Linear::new("fc", 8, 4, |o, i| (o == i) as i8).unwrap()),
        ];
        Model::new("resnet-tiny", layers).unwrap()
    }

    #[test]
    fn model_requires_trailing_classifier() {
        let missing = Model::new(
            "bad",
            vec![LayerKind::Conv {
                conv: Conv2d::new("c", 1, 1, 1, 1, 0, |_, _, _, _| 1).unwrap(),
                relu: true,
            }],
        );
        assert!(missing.is_err());
        let misplaced = Model::new(
            "bad",
            vec![
                LayerKind::Classifier(Linear::new("fc", 4, 2, |_, _| 1).unwrap()),
                LayerKind::GlobalAvgPool,
            ],
        );
        assert!(misplaced.is_err());
    }

    #[test]
    fn forward_produces_logits() {
        let model = tiny_model();
        let input = Tensor::from_fn([1, 8, 8], |_, y, x| ((y * 3 + x) % 5) as i8);
        let logits = model.forward(&input).unwrap();
        assert_eq!(logits.len(), 3);
        assert_eq!(model.num_classes(), 3);
        let class = model.predict(&input).unwrap();
        assert!(class < 3);
    }

    #[test]
    fn conv_layer_enumeration() {
        let model = residual_model();
        let convs = model.conv_layers();
        assert_eq!(convs.len(), 6); // stem + 2 + (2 + downsample)
        assert_eq!(model.num_conv_layers(), 6);
        assert_eq!(convs[0].name(), "stem");
        assert_eq!(convs[5].name(), "b2ds");
    }

    #[test]
    fn residual_forward_runs_and_matches_shapes() {
        let model = residual_model();
        let input = Tensor::from_fn([1, 8, 8], |_, y, x| ((y + x) % 4) as i8);
        let logits = model.forward(&input).unwrap();
        assert_eq!(logits.len(), 4);
        let features = model.penultimate_features(&input).unwrap();
        assert_eq!(features.len(), 8);
    }

    #[test]
    fn fault_hook_receives_all_conv_layers() {
        struct Counter {
            seen: Vec<u64>,
        }
        impl ConvFaultHook for Counter {
            fn corrupt(&mut self, conv_index: usize, acc: i32) -> i32 {
                self.seen[conv_index] += 1;
                acc
            }
        }
        let model = residual_model();
        let input = Tensor::from_fn([1, 8, 8], |_, y, x| ((y + x) % 4) as i8);
        let mut counter = Counter {
            seen: vec![0; model.num_conv_layers()],
        };
        model.forward_with_faults(&input, &mut counter).unwrap();
        assert!(counter.seen.iter().all(|&n| n > 0), "{:?}", counter.seen);
    }

    #[test]
    fn corrupting_faults_change_predictions_eventually() {
        struct SmashEverything;
        impl ConvFaultHook for SmashEverything {
            fn corrupt(&mut self, _conv_index: usize, _acc: i32) -> i32 {
                1 << 22
            }
        }
        let model = tiny_model();
        let input = Tensor::from_fn([1, 8, 8], |_, y, x| ((y * 7 + x) % 5) as i8);
        let clean = model.forward(&input).unwrap();
        let faulty = model
            .forward_with_faults(&input, &mut SmashEverything)
            .unwrap();
        assert_ne!(clean, faulty);
    }

    #[test]
    fn calibration_sets_scales_from_data() {
        let mut model = tiny_model();
        let before: Vec<f32> = model.conv_layers().iter().map(|c| c.out_scale()).collect();
        let images: Vec<Tensor<i8>> = (0..3)
            .map(|s| Tensor::from_fn([1, 8, 8], |_, y, x| ((y + x + s) % 6) as i8))
            .collect();
        model.calibrate(&images).unwrap();
        let after: Vec<f32> = model.conv_layers().iter().map(|c| c.out_scale()).collect();
        assert_ne!(before, after);
        assert!(after.iter().all(|&s| s > 0.0 && s.is_finite()));
        assert!(model.calibrate(&[]).is_err());
    }

    #[test]
    fn rank_classes_orders_by_logit() {
        assert_eq!(Model::rank_classes(&[3, 9, -1, 9]), vec![1, 3, 0, 2]);
        assert_eq!(argmax(&[1, 5, 5, 2]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
