//! Closed-form classifier-head fitting.
//!
//! With random (synthetic) convolutional features, the classifier head must
//! still separate the dataset's classes for the accuracy experiments to be
//! meaningful.  Rather than training end-to-end, the head is fitted in
//! closed form: the model is calibrated on a subset of the data, every
//! image's penultimate feature vector is extracted, per-class feature
//! centroids are computed, and the final linear layer's weights are set to
//! the (mean-removed) centroids — nearest-centroid classification expressed
//! as a linear layer.  This mirrors post-training head re-fitting and gives
//! clean accuracies in the realistic range without a training framework.

use crate::data::Dataset;
use crate::error::QnnError;
use crate::model::Model;
use crate::quant::clamp_i8;

/// Calibrates the model's quantization scales and fits its classifier head
/// to the dataset's class centroids.
///
/// Returns the fraction of dataset samples the fitted model classifies
/// correctly (clean accuracy), so callers can check the model is usable
/// before running error-injection experiments.
///
/// # Errors
///
/// Returns [`QnnError::InvalidDataset`] for an empty dataset or a dataset
/// whose class count does not match the model, and propagates shape errors
/// from the forward passes.
pub fn fit_classifier_head(model: &mut Model, dataset: &Dataset) -> Result<f64, QnnError> {
    if dataset.is_empty() {
        return Err(QnnError::dataset("cannot fit a head on an empty dataset"));
    }
    if dataset.num_classes() != model.num_classes() {
        return Err(QnnError::dataset(format!(
            "dataset has {} classes but the model expects {}",
            dataset.num_classes(),
            model.num_classes()
        )));
    }

    // 1. Calibrate requantization scales on a small subset.
    let calib = dataset.take(8);
    model.calibrate(calib.images())?;

    // 2. Extract penultimate features for every sample.
    let mut features = Vec::with_capacity(dataset.len());
    for (image, _) in dataset.iter() {
        features.push(model.penultimate_features(image)?);
    }
    let feature_dim = features[0].len();
    if feature_dim != model.classifier().in_features() {
        return Err(QnnError::shape(format!(
            "feature length {} != classifier input {}",
            feature_dim,
            model.classifier().in_features()
        )));
    }

    // 3. Per-class centroids and the global mean.
    let num_classes = model.num_classes();
    let mut sums = vec![vec![0f64; feature_dim]; num_classes];
    let mut counts = vec![0usize; num_classes];
    for (feat, (_, label)) in features.iter().zip(dataset.iter()) {
        counts[label] += 1;
        for (s, &f) in sums[label].iter_mut().zip(feat) {
            *s += f64::from(f);
        }
    }
    let mut centroids = vec![vec![0f64; feature_dim]; num_classes];
    for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
        if count == 0 {
            continue;
        }
        for (ci, s) in c.iter_mut().zip(sum) {
            *ci = s / count as f64;
        }
    }
    let mut mean = vec![0f64; feature_dim];
    for c in &centroids {
        for (m, v) in mean.iter_mut().zip(c) {
            *m += v / num_classes as f64;
        }
    }

    // 4. Write the mean-removed centroids into the classifier weights,
    //    scaled to use the int8 range, and set the bias to the nearest
    //    -centroid offset (-0.5 * ||centroid||^2 expressed in the same
    //    scale).
    let max_abs = centroids
        .iter()
        .flat_map(|c| c.iter().zip(&mean).map(|(v, m)| (v - m).abs()))
        .fold(1e-6f64, f64::max);
    let w_scale = 127.0 / max_abs;
    let classifier = model.classifier_mut();
    let in_features = classifier.in_features();
    let mut bias = vec![0i32; num_classes];
    for (class, centroid) in centroids.iter().enumerate() {
        let row = &mut classifier.weights_mut()[class * in_features..(class + 1) * in_features];
        let mut norm_sq = 0f64;
        let mut dot_mean = 0f64;
        for ((w, v), m) in row.iter_mut().zip(centroid).zip(&mean) {
            let centred = v - m;
            *w = clamp_i8((centred * w_scale) as f32);
            norm_sq += centred * centred;
            dot_mean += centred * m;
        }
        // Nearest-centroid discriminant with mean-removed centroids ĉ:
        // argmin ||x - c||² ⇔ argmax ĉ·(x - m) - 0.5||ĉ||²,
        // so the bias folds in both the -ĉ·m and the -0.5||ĉ||² terms
        // (in the same quantized units as the weight row).
        bias[class] = ((-0.5 * norm_sq - dot_mean) * w_scale).round() as i32;
    }
    classifier.set_bias(bias)?;

    // 5. Report clean accuracy.
    let mut correct = 0usize;
    for (image, label) in dataset.iter() {
        if model.predict(image)? == label {
            correct += 1;
        }
    }
    Ok(correct as f64 / dataset.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDatasetBuilder;
    use crate::models;

    #[test]
    fn fitted_head_separates_synthetic_classes() {
        let mut model = models::vgg11_cifar_scaled(8, 6, 3).unwrap();
        let dataset = SyntheticDatasetBuilder::new(6, [3, 16, 16])
            .samples_per_class(4)
            .noise(10.0)
            .seed(11)
            .build()
            .unwrap();
        let accuracy = fit_classifier_head(&mut model, &dataset).unwrap();
        // Nearest-centroid on random-conv features separates smooth
        // prototypes well; anything far above chance (1/6) demonstrates the
        // head fit worked.
        assert!(accuracy > 0.5, "clean accuracy {accuracy}");
    }

    #[test]
    fn fit_rejects_mismatched_class_counts() {
        let mut model = models::vgg11_cifar_scaled(8, 4, 0).unwrap();
        let dataset = SyntheticDatasetBuilder::new(3, [3, 16, 16])
            .samples_per_class(2)
            .build()
            .unwrap();
        assert!(fit_classifier_head(&mut model, &dataset).is_err());
    }
}
