//! Neural-network layers operating on int8 tensors with i32 accumulation.

pub mod conv;
pub mod linear;
pub mod pool;

pub use conv::Conv2d;
pub use linear::Linear;
pub use pool::{global_avg_pool, max_pool2};

/// A hook invoked on every pre-activation accumulator value, used by the
/// fault-injection machinery.  The identity hook is a no-op.
pub type AccumulatorHook<'a> = &'a mut dyn FnMut(i32) -> i32;

/// The identity accumulator hook (no fault injection).
pub fn identity_hook(acc: i32) -> i32 {
    acc
}
