//! Pooling operations on int8 tensors.

use crate::error::QnnError;
use crate::tensor::Tensor;

/// 2x2 max pooling with stride 2.
///
/// Odd trailing rows/columns are dropped, as in the standard floor-mode
/// pooling used by VGG/ResNet.
///
/// # Errors
///
/// Returns [`QnnError::ShapeMismatch`] if the spatial size is smaller than
/// the pooling window.
///
/// # Example
///
/// ```
/// use qnn::layers::max_pool2;
/// use qnn::Tensor;
///
/// # fn main() -> Result<(), qnn::QnnError> {
/// let t = Tensor::from_fn([1, 4, 4], |_, y, x| (y * 4 + x) as i8);
/// let pooled = max_pool2(&t)?;
/// assert_eq!(pooled.shape(), [1, 2, 2]);
/// assert_eq!(pooled.get(0, 0, 0), 5);
/// # Ok(())
/// # }
/// ```
pub fn max_pool2(input: &Tensor<i8>) -> Result<Tensor<i8>, QnnError> {
    if input.height() < 2 || input.width() < 2 {
        return Err(QnnError::shape(format!(
            "max_pool2 requires at least 2x2 input, got {}x{}",
            input.height(),
            input.width()
        )));
    }
    let out_h = input.height() / 2;
    let out_w = input.width() / 2;
    let mut out = Tensor::<i8>::zeros([input.channels(), out_h, out_w]);
    for c in 0..input.channels() {
        for y in 0..out_h {
            for x in 0..out_w {
                let m = input
                    .get(c, 2 * y, 2 * x)
                    .max(input.get(c, 2 * y, 2 * x + 1))
                    .max(input.get(c, 2 * y + 1, 2 * x))
                    .max(input.get(c, 2 * y + 1, 2 * x + 1));
                out.set(c, y, x, m);
            }
        }
    }
    Ok(out)
}

/// Global average pooling: averages every channel's spatial map down to a
/// single value (round-to-nearest).
///
/// # Errors
///
/// Returns [`QnnError::ShapeMismatch`] for an empty spatial map.
pub fn global_avg_pool(input: &Tensor<i8>) -> Result<Vec<i8>, QnnError> {
    let area = input.height() * input.width();
    if area == 0 {
        return Err(QnnError::shape("global_avg_pool requires a non-empty map"));
    }
    let mut out = Vec::with_capacity(input.channels());
    for c in 0..input.channels() {
        let mut sum = 0i32;
        for y in 0..input.height() {
            for x in 0..input.width() {
                sum += i32::from(input.get(c, y, x));
            }
        }
        let avg = (sum as f32 / area as f32).round();
        out.push(avg.clamp(-128.0, 127.0) as i8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maximum() {
        let t = Tensor::from_vec([1, 2, 4], vec![1i8, 5, -3, 2, 0, -1, 7, 7]).unwrap();
        let p = max_pool2(&t).unwrap();
        assert_eq!(p.shape(), [1, 1, 2]);
        assert_eq!(p.get(0, 0, 0), 5);
        assert_eq!(p.get(0, 0, 1), 7);
    }

    #[test]
    fn max_pool_drops_odd_edges() {
        let t = Tensor::from_fn([2, 5, 5], |c, y, x| (c * 25 + y * 5 + x) as i8);
        let p = max_pool2(&t).unwrap();
        assert_eq!(p.shape(), [2, 2, 2]);
    }

    #[test]
    fn max_pool_rejects_tiny_inputs() {
        let t = Tensor::<i8>::zeros([1, 1, 4]);
        assert!(max_pool2(&t).is_err());
    }

    #[test]
    fn global_avg_pool_averages() {
        let t = Tensor::from_vec([2, 1, 2], vec![10i8, 20, -10, -20]).unwrap();
        let v = global_avg_pool(&t).unwrap();
        assert_eq!(v, vec![15, -15]);
    }

    #[test]
    fn global_avg_pool_rejects_empty_map() {
        let t = Tensor::<i8>::zeros([2, 0, 3]);
        assert!(global_avg_pool(&t).is_err());
    }
}
