//! Fully connected (linear) layer with int8 weights and i32 logits.

use crate::error::QnnError;

/// A fully connected layer mapping an int8 feature vector to i32 logits.
///
/// The classifier head of every model in the zoo is a `Linear` layer; its
/// raw i32 outputs are used directly for arg-max classification, so no
/// requantization is applied.
///
/// # Example
///
/// ```
/// use qnn::layers::Linear;
///
/// # fn main() -> Result<(), qnn::QnnError> {
/// let layer = Linear::new("fc", 4, 2, |o, i| if o == i { 1 } else { 0 })?;
/// let logits = layer.forward(&[10, 20, 30, 40])?;
/// assert_eq!(logits, vec![10, 20]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    /// Row-major `[out_features][in_features]` weights.
    weights: Vec<i8>,
    bias: Vec<i32>,
}

impl Linear {
    /// Creates a linear layer, initialising every weight via `init(out, in)`.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidConfig`] for zero-sized dimensions.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        mut init: impl FnMut(usize, usize) -> i8,
    ) -> Result<Self, QnnError> {
        if in_features == 0 || out_features == 0 {
            return Err(QnnError::config("linear dimensions must be non-zero"));
        }
        let mut weights = Vec::with_capacity(in_features * out_features);
        for o in 0..out_features {
            for i in 0..in_features {
                weights.push(init(o, i));
            }
        }
        Ok(Linear {
            name: name.into(),
            in_features,
            out_features,
            weights,
            bias: vec![0; out_features],
        })
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Mutably borrow the row-major weight storage.
    pub fn weights_mut(&mut self) -> &mut [i8] {
        &mut self.weights
    }

    /// Borrow the row-major weight storage.
    pub fn weights(&self) -> &[i8] {
        &self.weights
    }

    /// Sets the per-output bias.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] if the length differs from the
    /// output feature count.
    pub fn set_bias(&mut self, bias: Vec<i32>) -> Result<(), QnnError> {
        if bias.len() != self.out_features {
            return Err(QnnError::shape(format!(
                "bias length {} != output features {}",
                bias.len(),
                self.out_features
            )));
        }
        self.bias = bias;
        Ok(())
    }

    /// Borrow the per-output bias.
    pub fn bias(&self) -> &[i32] {
        &self.bias
    }

    /// Computes the i32 logits for an int8 feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] if the feature length differs
    /// from the layer's input size.
    pub fn forward(&self, features: &[i8]) -> Result<Vec<i32>, QnnError> {
        if features.len() != self.in_features {
            return Err(QnnError::shape(format!(
                "layer {} expects {} features, got {}",
                self.name,
                self.in_features,
                features.len()
            )));
        }
        let mut logits = Vec::with_capacity(self.out_features);
        for o in 0..self.out_features {
            let row = &self.weights[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = self.bias[o];
            for (w, a) in row.iter().zip(features) {
                acc += i32::from(*w) * i32::from(*a);
            }
            logits.push(acc);
        }
        Ok(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimensions() {
        assert!(Linear::new("fc", 0, 2, |_, _| 0).is_err());
        assert!(Linear::new("fc", 2, 0, |_, _| 0).is_err());
    }

    #[test]
    fn forward_computes_dot_products() {
        let layer = Linear::new("fc", 3, 2, |o, i| (o * 3 + i) as i8).unwrap();
        let logits = layer.forward(&[1, 2, 3]).unwrap();
        // Row 0 = [0,1,2] -> 0+2+6 = 8; row 1 = [3,4,5] -> 3+8+15 = 26.
        assert_eq!(logits, vec![8, 26]);
    }

    #[test]
    fn bias_offsets_logits() {
        let mut layer = Linear::new("fc", 2, 2, |_, _| 0).unwrap();
        layer.set_bias(vec![5, -5]).unwrap();
        assert_eq!(layer.forward(&[1, 1]).unwrap(), vec![5, -5]);
        assert!(layer.set_bias(vec![0]).is_err());
    }

    #[test]
    fn feature_length_checked() {
        let layer = Linear::new("fc", 3, 2, |_, _| 1).unwrap();
        assert!(layer.forward(&[1, 2]).is_err());
    }

    #[test]
    fn accessors() {
        let mut layer = Linear::new("fc", 3, 2, |_, _| 1).unwrap();
        assert_eq!(layer.name(), "fc");
        assert_eq!(layer.in_features(), 3);
        assert_eq!(layer.out_features(), 2);
        assert_eq!(layer.weights().len(), 6);
        layer.weights_mut()[0] = 7;
        assert_eq!(layer.weights()[0], 7);
    }
}
