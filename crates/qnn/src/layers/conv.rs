//! 2-D convolution with int8 operands and i32 accumulation.

use accel_sim::{ConvShape, Matrix};

use crate::error::QnnError;
use crate::quant::requantize;
use crate::tensor::Tensor;

use super::AccumulatorHook;

/// A 2-D convolution layer (square kernels, equal stride and padding in both
/// spatial dimensions, no groups).
///
/// Weights are stored in KCHW order (output-channel major), matching the
/// accelerator's weight-matrix lowering, and the layer exposes its weight
/// matrix in the `(C*F*F) x K` form the READ optimizer consumes.
///
/// # Example
///
/// ```
/// use qnn::layers::Conv2d;
/// use qnn::Tensor;
///
/// # fn main() -> Result<(), qnn::QnnError> {
/// let conv = Conv2d::new("conv1", 3, 8, 3, 1, 1, |k, c, dy, dx| {
///     (((k + c + dy + dx) % 5) as i8) - 2
/// })?;
/// let input = Tensor::from_fn([3, 8, 8], |c, y, x| ((c + y + x) % 4) as i8);
/// let output = conv.forward(&input, true)?;
/// assert_eq!(output.shape(), [8, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    name: String,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// KCHW weights.
    weights: Vec<i8>,
    /// Per-output-channel bias added to the accumulator.
    bias: Vec<i32>,
    /// Requantization scale applied to the accumulator.
    out_scale: f32,
}

impl Conv2d {
    /// Creates a convolution layer, initialising every weight via
    /// `init(k, c, dy, dx)`.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidConfig`] for zero-sized dimensions or a
    /// zero stride.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        mut init: impl FnMut(usize, usize, usize, usize) -> i8,
    ) -> Result<Self, QnnError> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(QnnError::config(
                "convolution dimensions and stride must be non-zero",
            ));
        }
        let mut weights = Vec::with_capacity(out_channels * in_channels * kernel * kernel);
        for k in 0..out_channels {
            for c in 0..in_channels {
                for dy in 0..kernel {
                    for dx in 0..kernel {
                        weights.push(init(k, c, dy, dx));
                    }
                }
            }
        }
        Ok(Conv2d {
            name: name.into(),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weights,
            bias: vec![0; out_channels],
            out_scale: 1.0 / 64.0,
        })
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size (square).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Number of MAC operations per output activation (`C * F * F`).
    pub fn macs_per_output(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// The requantization scale applied to accumulator outputs.
    pub fn out_scale(&self) -> f32 {
        self.out_scale
    }

    /// Sets the requantization scale.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidConfig`] for non-positive or non-finite
    /// scales.
    pub fn set_out_scale(&mut self, scale: f32) -> Result<(), QnnError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(QnnError::config(format!("invalid output scale {scale}")));
        }
        self.out_scale = scale;
        Ok(())
    }

    /// Sets the per-output-channel bias.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] if the length differs from the
    /// output channel count.
    pub fn set_bias(&mut self, bias: Vec<i32>) -> Result<(), QnnError> {
        if bias.len() != self.out_channels {
            return Err(QnnError::shape(format!(
                "bias length {} != output channels {}",
                bias.len(),
                self.out_channels
            )));
        }
        self.bias = bias;
        Ok(())
    }

    /// Borrow the per-output-channel bias.
    pub fn bias(&self) -> &[i32] {
        &self.bias
    }

    /// Borrow the KCHW weight storage.
    pub fn weights(&self) -> &[i8] {
        &self.weights
    }

    /// Mutably borrow the KCHW weight storage.
    pub fn weights_mut(&mut self) -> &mut [i8] {
        &mut self.weights
    }

    /// The weight matrix in `(C*F*F) x K` form — the matrix the READ
    /// optimizer reorders.
    pub fn weight_matrix(&self) -> Matrix<i8> {
        let rows = self.macs_per_output();
        Matrix::from_fn(rows, self.out_channels, |r, k| self.weights[k * rows + r])
    }

    /// The [`ConvShape`] of this layer for a given input spatial size, used
    /// to drive the accelerator simulator.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidConfig`] if the filter does not fit the
    /// padded input.
    pub fn conv_shape(&self, input_h: usize, input_w: usize) -> Result<ConvShape, QnnError> {
        ConvShape::new(
            1,
            self.in_channels,
            input_h,
            input_w,
            self.out_channels,
            self.kernel,
            self.kernel,
            self.stride,
            self.padding,
        )
        .map_err(|e| QnnError::config(e.to_string()))
    }

    /// Output spatial size for a given input spatial size.
    fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize), QnnError> {
        let padded_h = h + 2 * self.padding;
        let padded_w = w + 2 * self.padding;
        if self.kernel > padded_h || self.kernel > padded_w {
            return Err(QnnError::shape(format!(
                "kernel {} larger than padded input {padded_h}x{padded_w}",
                self.kernel
            )));
        }
        Ok((
            (padded_h - self.kernel) / self.stride + 1,
            (padded_w - self.kernel) / self.stride + 1,
        ))
    }

    /// Runs the convolution, applying ReLU when `relu` is true.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] if the input channel count does
    /// not match the layer.
    pub fn forward(&self, input: &Tensor<i8>, relu: bool) -> Result<Tensor<i8>, QnnError> {
        self.forward_with(input, relu, &mut super::identity_hook)
    }

    /// Runs the convolution with an accumulator hook invoked on every
    /// pre-activation accumulator value (the fault-injection point used by
    /// the paper's error-injection protocol).
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] if the input channel count does
    /// not match the layer.
    pub fn forward_with(
        &self,
        input: &Tensor<i8>,
        relu: bool,
        hook: AccumulatorHook<'_>,
    ) -> Result<Tensor<i8>, QnnError> {
        if input.channels() != self.in_channels {
            return Err(QnnError::shape(format!(
                "layer {} expects {} input channels, got {}",
                self.name,
                self.in_channels,
                input.channels()
            )));
        }
        let (out_h, out_w) = self.output_hw(input.height(), input.width())?;
        let mut output = Tensor::<i8>::zeros([self.out_channels, out_h, out_w]);
        let k_area = self.kernel * self.kernel;
        let per_out_channel = self.in_channels * k_area;

        for k in 0..self.out_channels {
            let w_base = k * per_out_channel;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = self.bias[k];
                    for c in 0..self.in_channels {
                        for dy in 0..self.kernel {
                            let iy = (oy * self.stride + dy) as isize - self.padding as isize;
                            if iy < 0 || iy >= input.height() as isize {
                                continue;
                            }
                            for dx in 0..self.kernel {
                                let ix = (ox * self.stride + dx) as isize - self.padding as isize;
                                if ix < 0 || ix >= input.width() as isize {
                                    continue;
                                }
                                let w = self.weights[w_base + c * k_area + dy * self.kernel + dx];
                                let a = input.get(c, iy as usize, ix as usize);
                                acc += i32::from(w) * i32::from(a);
                            }
                        }
                    }
                    let acc = hook(acc);
                    let mut v = requantize(acc, self.out_scale);
                    if relu {
                        v = v.max(0);
                    }
                    output.set(k, oy, ox, v);
                }
            }
        }
        Ok(output)
    }

    /// Runs the convolution and returns the raw accumulator tensor (no
    /// requantization, no activation).  Used for calibration.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::ShapeMismatch`] if the input channel count does
    /// not match the layer.
    pub fn forward_accumulators(&self, input: &Tensor<i8>) -> Result<Tensor<i32>, QnnError> {
        if input.channels() != self.in_channels {
            return Err(QnnError::shape(format!(
                "layer {} expects {} input channels, got {}",
                self.name,
                self.in_channels,
                input.channels()
            )));
        }
        let (out_h, out_w) = self.output_hw(input.height(), input.width())?;
        let mut output = Tensor::<i32>::zeros([self.out_channels, out_h, out_w]);
        let k_area = self.kernel * self.kernel;
        let per_out_channel = self.in_channels * k_area;
        for k in 0..self.out_channels {
            let w_base = k * per_out_channel;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = self.bias[k];
                    for c in 0..self.in_channels {
                        for dy in 0..self.kernel {
                            let iy = (oy * self.stride + dy) as isize - self.padding as isize;
                            if iy < 0 || iy >= input.height() as isize {
                                continue;
                            }
                            for dx in 0..self.kernel {
                                let ix = (ox * self.stride + dx) as isize - self.padding as isize;
                                if ix < 0 || ix >= input.width() as isize {
                                    continue;
                                }
                                let w = self.weights[w_base + c * k_area + dy * self.kernel + dx];
                                let a = input.get(c, iy as usize, ix as usize);
                                acc += i32::from(w) * i32::from(a);
                            }
                        }
                    }
                    output.set(k, oy, ox, acc);
                }
            }
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_conv() -> Conv2d {
        Conv2d::new("c", 2, 3, 3, 1, 1, |k, c, dy, dx| {
            (((k * 7 + c * 5 + dy * 3 + dx) % 9) as i8) - 4
        })
        .unwrap()
    }

    #[test]
    fn rejects_invalid_config() {
        assert!(Conv2d::new("c", 0, 1, 3, 1, 1, |_, _, _, _| 0).is_err());
        assert!(Conv2d::new("c", 1, 0, 3, 1, 1, |_, _, _, _| 0).is_err());
        assert!(Conv2d::new("c", 1, 1, 0, 1, 1, |_, _, _, _| 0).is_err());
        assert!(Conv2d::new("c", 1, 1, 3, 0, 1, |_, _, _, _| 0).is_err());
    }

    #[test]
    fn output_shape_same_padding() {
        let conv = small_conv();
        let input = Tensor::from_fn([2, 6, 6], |c, y, x| ((c + y + x) % 3) as i8);
        let out = conv.forward(&input, false).unwrap();
        assert_eq!(out.shape(), [3, 6, 6]);
    }

    #[test]
    fn output_shape_stride_two() {
        let conv = Conv2d::new("c", 2, 4, 3, 2, 1, |_, _, _, _| 1).unwrap();
        let input = Tensor::from_fn([2, 8, 8], |_, _, _| 1i8);
        let out = conv.forward(&input, false).unwrap();
        assert_eq!(out.shape(), [4, 4, 4]);
    }

    #[test]
    fn input_channel_mismatch_rejected() {
        let conv = small_conv();
        let input = Tensor::from_fn([3, 6, 6], |_, _, _| 1i8);
        assert!(conv.forward(&input, false).is_err());
        assert!(conv.forward_accumulators(&input).is_err());
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // A 1x1 conv with weight 1 (and out_scale 1) copies the channel.
        let mut conv = Conv2d::new("id", 1, 1, 1, 1, 0, |_, _, _, _| 1).unwrap();
        conv.set_out_scale(1.0).unwrap();
        let input = Tensor::from_fn([1, 4, 4], |_, y, x| (y * 4 + x) as i8 - 8);
        let out = conv.forward(&input, false).unwrap();
        assert_eq!(out, input);
        let relu_out = conv.forward(&input, true).unwrap();
        assert!(relu_out.as_slice().iter().all(|&v| v >= 0));
    }

    #[test]
    fn accumulators_match_forward_before_requantization() {
        let mut conv = small_conv();
        conv.set_out_scale(1.0).unwrap();
        let input = Tensor::from_fn([2, 5, 5], |c, y, x| ((c * 3 + y * 2 + x) % 5) as i8 - 2);
        let acc = conv.forward_accumulators(&input).unwrap();
        let out = conv.forward(&input, false).unwrap();
        for (a, o) in acc.as_slice().iter().zip(out.as_slice()) {
            let expected = (*a).clamp(-128, 127) as i8;
            assert_eq!(*o, expected);
        }
    }

    #[test]
    fn bias_shifts_accumulator() {
        let mut conv = Conv2d::new("b", 1, 2, 1, 1, 0, |_, _, _, _| 0).unwrap();
        conv.set_bias(vec![10, -20]).unwrap();
        conv.set_out_scale(1.0).unwrap();
        let input = Tensor::from_fn([1, 2, 2], |_, _, _| 0i8);
        let out = conv.forward(&input, false).unwrap();
        assert!(out.as_slice()[..4].iter().all(|&v| v == 10));
        assert!(out.as_slice()[4..].iter().all(|&v| v == -20));
        assert!(conv.set_bias(vec![1]).is_err());
    }

    #[test]
    fn hook_sees_every_accumulator() {
        let conv = small_conv();
        let input = Tensor::from_fn([2, 4, 4], |_, _, _| 1i8);
        let mut count = 0usize;
        let mut hook = |acc: i32| {
            count += 1;
            acc
        };
        let out = conv.forward_with(&input, false, &mut hook).unwrap();
        assert_eq!(count, out.len());
    }

    #[test]
    fn hook_corruption_changes_output() {
        let conv = small_conv();
        let input = Tensor::from_fn([2, 4, 4], |c, y, x| ((c + y * x) % 5) as i8);
        let clean = conv.forward(&input, false).unwrap();
        let mut hook = |_acc: i32| 1 << 20;
        let corrupted = conv.forward_with(&input, false, &mut hook).unwrap();
        assert_ne!(clean, corrupted);
        assert!(corrupted.as_slice().iter().all(|&v| v == 127));
    }

    #[test]
    fn weight_matrix_layout_matches_kchw() {
        let conv = small_conv();
        let m = conv.weight_matrix();
        assert_eq!(m.rows(), 2 * 9);
        assert_eq!(m.cols(), 3);
        // Element (r, k) must equal weights[k][c][dy][dx] with r = c*9+dy*3+dx.
        assert_eq!(m[(0, 0)], conv.weights()[0]);
        assert_eq!(m[(9, 1)], conv.weights()[18 + 9]);
    }

    #[test]
    fn conv_shape_roundtrip() {
        let conv = small_conv();
        let shape = conv.conv_shape(32, 32).unwrap();
        assert_eq!(shape.k, 3);
        assert_eq!(shape.reduction_len(), conv.macs_per_output());
        assert!(conv.conv_shape(0, 32).is_err());
    }

    #[test]
    fn scale_validation() {
        let mut conv = small_conv();
        assert!(conv.set_out_scale(0.0).is_err());
        assert!(conv.set_out_scale(f32::INFINITY).is_err());
        assert!(conv.set_out_scale(0.25).is_ok());
        assert_eq!(conv.out_scale(), 0.25);
    }
}
