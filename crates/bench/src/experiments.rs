//! Experiment runners shared by the figure benches.

use accel_sim::{ArrayConfig, ComputeSchedule, Dataflow, SimOptions};
use qnn::fault::{evaluate_topk, FaultConfig};
use qnn::{Dataset, Model};
use read_core::{ClusteringMode, ReadConfig, ReadOptimizer, SortCriterion};
use timing::{ber_from_ter, DelayModel, DepthHistogram, OperatingCondition};

use crate::workloads::LayerWorkload;

/// The algorithms compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The unmodified accelerator order.
    Baseline,
    /// Input-channel reordering on consecutive column tiles.
    Reorder(SortCriterion),
    /// Output-channel clustering followed by per-cluster reordering.
    ClusterThenReorder(SortCriterion),
}

impl Algorithm {
    /// The three configurations of Figs. 8, 10 and 11.
    pub fn paper_set() -> [Algorithm; 3] {
        [
            Algorithm::Baseline,
            Algorithm::Reorder(SortCriterion::SignFirst),
            Algorithm::ClusterThenReorder(SortCriterion::SignFirst),
        ]
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Algorithm::Baseline => "baseline".to_string(),
            Algorithm::Reorder(c) => format!("reorder[{c}]"),
            Algorithm::ClusterThenReorder(c) => format!("cluster-then-reorder[{c}]"),
        }
    }

    /// Builds the compute schedule this algorithm produces for a weight
    /// matrix on an array with `cols` columns.
    ///
    /// # Panics
    ///
    /// Panics if the optimizer rejects the matrix (empty weights), which
    /// cannot happen for generated workloads.
    pub fn schedule(&self, workload: &LayerWorkload, cols: usize) -> ComputeSchedule {
        match self {
            Algorithm::Baseline => ComputeSchedule::baseline(
                workload.weights.rows(),
                workload.weights.cols(),
                cols,
            ),
            Algorithm::Reorder(criterion) => ReadOptimizer::new(ReadConfig {
                criterion: *criterion,
                clustering: ClusteringMode::Direct,
                ..ReadConfig::default()
            })
            .optimize(&workload.weights, cols)
            .expect("workload weights are non-empty")
            .to_compute_schedule(),
            Algorithm::ClusterThenReorder(criterion) => ReadOptimizer::new(ReadConfig {
                criterion: *criterion,
                clustering: ClusteringMode::ClusterThenReorder,
                ..ReadConfig::default()
            })
            .optimize(&workload.weights, cols)
            .expect("workload weights are non-empty")
            .to_compute_schedule(),
        }
    }
}

/// Simulates one layer under one algorithm and returns the triggered-depth
/// histogram (from which the TER at any corner can be computed).
///
/// # Panics
///
/// Panics if the simulation rejects the generated workload, which indicates
/// a bug in the harness rather than a recoverable condition.
pub fn layer_report(
    workload: &LayerWorkload,
    algorithm: Algorithm,
    array: &ArrayConfig,
) -> DepthHistogram {
    let schedule = algorithm.schedule(workload, array.cols());
    let mut hist = DepthHistogram::new();
    workload
        .problem()
        .simulate_with_schedule(
            array,
            Dataflow::OutputStationary,
            &schedule,
            &SimOptions::exhaustive(),
            &mut hist,
        )
        .expect("generated workloads always simulate");
    hist
}

/// One row of the layer-wise TER tables (Figs. 7 and 8).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTerRow {
    /// Layer name.
    pub layer: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Timing error rate at the evaluated corner.
    pub ter: f64,
    /// Sign-flip rate of the schedule.
    pub sign_flip_rate: f64,
    /// MAC operations per output activation.
    pub macs_per_output: usize,
    /// Activation-level BER implied by the TER (Eq. (1)).
    pub ber: f64,
}

/// Runs the layer-wise TER experiment: every workload under every algorithm
/// at the given corner (the paper's Fig. 8 uses 10-year aging + 5 % VT).
pub fn layerwise_ter(
    workloads: &[LayerWorkload],
    algorithms: &[Algorithm],
    array: &ArrayConfig,
    delay: &DelayModel,
    condition: &OperatingCondition,
) -> Vec<LayerTerRow> {
    let mut rows = Vec::new();
    for workload in workloads {
        for &algorithm in algorithms {
            let hist = layer_report(workload, algorithm, array);
            let ter = hist.ter(delay, condition);
            rows.push(LayerTerRow {
                layer: workload.name.clone(),
                algorithm: algorithm.name(),
                ter,
                sign_flip_rate: hist.sign_flip_rate(),
                macs_per_output: workload.macs_per_output(),
                ber: ber_from_ter(ter, workload.macs_per_output()),
            });
        }
    }
    rows
}

/// Geometric-mean TER reduction of `algorithm` relative to the baseline over
/// the given rows, plus the maximum per-layer reduction.
pub fn ter_reduction(rows: &[LayerTerRow], algorithm: &str) -> (f64, f64) {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    let mut max = 0.0f64;
    for row in rows.iter().filter(|r| r.algorithm == algorithm) {
        if let Some(base) = rows
            .iter()
            .find(|r| r.layer == row.layer && r.algorithm == "baseline")
        {
            if row.ter > 0.0 && base.ter > 0.0 {
                let reduction = base.ter / row.ter;
                log_sum += reduction.ln();
                count += 1;
                max = max.max(reduction);
            }
        }
    }
    if count == 0 {
        (1.0, 1.0)
    } else {
        ((log_sum / count as f64).exp(), max)
    }
}

/// One point of the accuracy figures (Figs. 10 and 11).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPoint {
    /// Operating corner name.
    pub condition: &'static str,
    /// Algorithm name.
    pub algorithm: String,
    /// Mean top-1 accuracy over the seeds.
    pub top1: f64,
    /// Mean top-k accuracy over the seeds.
    pub topk: f64,
    /// Mean per-layer BER used for the injection (for the record).
    pub mean_ber: f64,
}

/// Runs the accuracy-under-PVTA experiment for one model.
///
/// For every (corner, algorithm) pair the per-layer TERs of the *full-size*
/// workloads are converted to BERs via Eq. (1), matched to the scaled
/// executable model's convolution layers by name, and the dataset is
/// evaluated under error injection with `seeds` different seeds.
///
/// # Errors
///
/// Propagates evaluation errors from the model (shape mismatches).
#[allow(clippy::too_many_arguments)]
pub fn accuracy_sweep(
    model: &Model,
    dataset: &Dataset,
    workloads: &[LayerWorkload],
    algorithms: &[Algorithm],
    conditions: &[OperatingCondition],
    array: &ArrayConfig,
    delay: &DelayModel,
    seeds: u64,
    top_k: usize,
) -> Result<Vec<AccuracyPoint>, qnn::QnnError> {
    // One simulation pass per (layer, algorithm); corners reuse the
    // histograms.
    let mut histograms: Vec<Vec<DepthHistogram>> = Vec::with_capacity(algorithms.len());
    for &algorithm in algorithms {
        histograms.push(
            workloads
                .iter()
                .map(|w| layer_report(w, algorithm, array))
                .collect(),
        );
    }

    let conv_names: Vec<String> = model
        .conv_layers()
        .iter()
        .map(|c| c.name().to_string())
        .collect();

    let mut points = Vec::new();
    for condition in conditions {
        for (ai, &algorithm) in algorithms.iter().enumerate() {
            // Per-layer BERs for the scaled model, matched by layer name;
            // layers without a matching workload (e.g. ResNet downsample
            // projections) receive zero BER.
            let mut bers = vec![0.0f64; conv_names.len()];
            let mut ber_sum = 0.0;
            let mut ber_count = 0usize;
            for (workload, hist) in workloads.iter().zip(&histograms[ai]) {
                let ter = hist.ter(delay, condition);
                let ber = ber_from_ter(ter, workload.macs_per_output());
                ber_sum += ber;
                ber_count += 1;
                if let Some(idx) = conv_names.iter().position(|n| *n == workload.name) {
                    bers[idx] = ber;
                }
            }
            let mut top1 = 0.0;
            let mut topk = 0.0;
            for seed in 0..seeds.max(1) {
                let config = FaultConfig::per_layer(bers.clone(), seed * 977 + 13);
                let acc = evaluate_topk(model, dataset, &config, top_k)?;
                top1 += acc.top1;
                topk += acc.topk;
            }
            let runs = seeds.max(1) as f64;
            points.push(AccuracyPoint {
                condition: condition.name,
                algorithm: algorithm.name(),
                top1: top1 / runs,
                topk: topk / runs,
                mean_ber: if ber_count == 0 {
                    0.0
                } else {
                    ber_sum / ber_count as f64
                },
            });
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{vgg16_workloads, WorkloadConfig};

    fn tiny_workloads() -> Vec<LayerWorkload> {
        let config = WorkloadConfig {
            pixels_per_layer: 1,
            ..WorkloadConfig::default()
        };
        // Only the two smallest layers to keep the test fast.
        vgg16_workloads(&config).into_iter().take(2).collect()
    }

    #[test]
    fn algorithm_names_are_distinct() {
        let names: Vec<String> = Algorithm::paper_set().iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|n| !n.is_empty()));
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }

    #[test]
    fn reordering_reduces_ter_in_layerwise_experiment() {
        let workloads = tiny_workloads();
        let rows = layerwise_ter(
            &workloads,
            &Algorithm::paper_set(),
            &ArrayConfig::paper_default(),
            &DelayModel::nangate15_like(),
            &OperatingCondition::aging_vt(10.0, 0.05),
        );
        assert_eq!(rows.len(), workloads.len() * 3);
        let (geo, max) = ter_reduction(&rows, &Algorithm::Reorder(SortCriterion::SignFirst).name());
        assert!(geo > 1.0, "reorder should reduce TER, got {geo}x");
        assert!(max >= geo);
    }

    #[test]
    fn histograms_reused_across_conditions_are_consistent() {
        let workloads = tiny_workloads();
        let hist = layer_report(
            &workloads[0],
            Algorithm::Baseline,
            &ArrayConfig::paper_default(),
        );
        let delay = DelayModel::nangate15_like();
        let ideal = hist.ter(&delay, &OperatingCondition::ideal());
        let worst = hist.ter(&delay, &OperatingCondition::aging_vt(10.0, 0.05));
        assert!(worst > ideal);
    }

    #[test]
    fn ter_reduction_handles_missing_algorithm() {
        let rows = vec![];
        assert_eq!(ter_reduction(&rows, "reorder[sign_first]"), (1.0, 1.0));
    }
}
