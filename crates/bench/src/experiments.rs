//! Experiment runners shared by the figure benches — thin adapters over the
//! unified [`read_pipeline::ReadPipeline`] API.
//!
//! The schedule construction, simulation, caching and parallel fan-out all
//! live in `read-pipeline`; this module keeps the figure-oriented row types
//! and the historical function signatures the benches are written against.

use std::sync::Arc;

use accel_sim::ArrayConfig;
use qnn::{Dataset, Model};
pub use read_pipeline::Algorithm;
use read_pipeline::{
    ArtifactStore, CacheStats, DelayErrorModel, ErrorModel, Executor, ReadPipeline, SweepPlan,
    SweepReport, TopKEvaluator,
};
use timing::{DelayModel, DepthHistogram, OperatingCondition};

use crate::workloads::LayerWorkload;

/// Builds the standard figure pipeline: the given algorithms as schedule
/// sources, the analytic error model over the given delay model, the given
/// corners, parallel per-layer execution.
///
/// # Panics
///
/// Panics if the combination is invalid (e.g. duplicate algorithm names),
/// which indicates a bug in the bench harness rather than a recoverable
/// condition.
pub fn figure_pipeline(
    algorithms: &[Algorithm],
    array: &ArrayConfig,
    delay: &DelayModel,
    conditions: &[OperatingCondition],
) -> ReadPipeline {
    figure_pipeline_with_model(algorithms, array, DelayErrorModel::new(*delay), conditions)
}

/// Like [`figure_pipeline`], but with an explicit [`ErrorModel`] stage —
/// the seam the Monte-Carlo and per-PE-variation figure variants plug into.
///
/// # Panics
///
/// Panics if the combination is invalid (e.g. duplicate algorithm names),
/// which indicates a bug in the bench harness rather than a recoverable
/// condition.
pub fn figure_pipeline_with_model(
    algorithms: &[Algorithm],
    array: &ArrayConfig,
    error_model: impl ErrorModel + 'static,
    conditions: &[OperatingCondition],
) -> ReadPipeline {
    let mut builder = ReadPipeline::builder()
        .array(*array)
        .error_model(error_model)
        .conditions(conditions.iter().copied())
        .parallel();
    for &algorithm in algorithms {
        builder = builder.source(algorithm);
    }
    builder
        .build()
        .expect("figure pipeline configuration is valid")
}

/// Runs a corner/die sweep over the given algorithms: the plan's (die,
/// condition) grid, parallel execution, shared schedule cache across cells.
///
/// # Panics
///
/// Panics if the combination is invalid (duplicate algorithm names, empty
/// plan), which indicates a bug in the bench harness rather than a
/// recoverable condition.
pub fn corner_sweep(
    algorithms: &[Algorithm],
    array: &ArrayConfig,
    plan: SweepPlan,
    workloads: &[LayerWorkload],
) -> SweepReport {
    corner_sweep_on(
        read_pipeline::ThreadExecutor::machine(),
        algorithms,
        array,
        plan,
        workloads,
    )
}

/// Like [`corner_sweep`], but on an explicit [`Executor`] — the seam for
/// benchmarking a sweep across worker threads or processes (any strategy
/// returns byte-identical reports, so only the wall clock changes).
///
/// # Panics
///
/// See [`corner_sweep`].
pub fn corner_sweep_on(
    executor: impl Executor + 'static,
    algorithms: &[Algorithm],
    array: &ArrayConfig,
    plan: SweepPlan,
    workloads: &[LayerWorkload],
) -> SweepReport {
    let mut builder = ReadPipeline::builder()
        .array(*array)
        .sweep(plan)
        .executor(executor);
    for &algorithm in algorithms {
        builder = builder.source(algorithm);
    }
    builder
        .build()
        .expect("sweep pipeline configuration is valid")
        .run_sweep("corner-sweep", workloads)
        .expect("generated workloads always simulate")
}

/// Like [`corner_sweep_on`], but over a shared content-addressed
/// [`ArtifactStore`] (a `MemoryStore` shared between benches in one
/// process, or a `DiskStore` persisting schedules, histograms and unit
/// results across bench runs).  Returns the report together with the
/// pipeline's [`CacheStats`], so a bench can print how much of the sweep
/// was pure aggregation.
///
/// # Panics
///
/// See [`corner_sweep`].
pub fn corner_sweep_stored(
    executor: impl Executor + 'static,
    store: Arc<dyn ArtifactStore>,
    algorithms: &[Algorithm],
    array: &ArrayConfig,
    plan: SweepPlan,
    workloads: &[LayerWorkload],
) -> (SweepReport, CacheStats) {
    let mut builder = ReadPipeline::builder()
        .array(*array)
        .sweep(plan)
        .executor(executor)
        .store_arc(store);
    for &algorithm in algorithms {
        builder = builder.source(algorithm);
    }
    let pipeline = builder
        .build()
        .expect("sweep pipeline configuration is valid");
    let report = pipeline
        .run_sweep("corner-sweep", workloads)
        .expect("generated workloads always simulate");
    let stats = pipeline.cache_stats();
    (report, stats)
}

/// Simulates one layer under one algorithm and returns the triggered-depth
/// histogram (from which the TER at any corner can be computed).
///
/// # Panics
///
/// Panics if the simulation rejects the generated workload, which indicates
/// a bug in the harness rather than a recoverable condition.
pub fn layer_report(
    workload: &LayerWorkload,
    algorithm: Algorithm,
    array: &ArrayConfig,
) -> DepthHistogram {
    let pipeline = figure_pipeline(
        &[algorithm],
        array,
        &DelayModel::nangate15_like(),
        &[OperatingCondition::ideal()],
    );
    pipeline
        .layer_histogram(workload, &algorithm)
        .expect("generated workloads always simulate")
}

/// One row of the layer-wise TER tables (Figs. 7 and 8).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTerRow {
    /// Layer name.
    pub layer: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Timing error rate at the evaluated corner.
    pub ter: f64,
    /// Spread of the TER estimate (Monte-Carlo trial stddev or PE-to-PE
    /// spread), when the error model produces one.
    pub ter_stddev: Option<f64>,
    /// Sign-flip rate of the schedule.
    pub sign_flip_rate: f64,
    /// MAC operations per output activation.
    pub macs_per_output: usize,
    /// Activation-level BER implied by the TER (Eq. (1)).
    pub ber: f64,
}

/// Runs the layer-wise TER experiment: every workload under every algorithm
/// at the given corner (the paper's Fig. 8 uses 10-year aging + 5 % VT).
pub fn layerwise_ter(
    workloads: &[LayerWorkload],
    algorithms: &[Algorithm],
    array: &ArrayConfig,
    delay: &DelayModel,
    condition: &OperatingCondition,
) -> Vec<LayerTerRow> {
    let pipeline = figure_pipeline(algorithms, array, delay, &[*condition]);
    layerwise_ter_with(&pipeline, workloads)
}

/// Runs the layer-wise TER experiment on an already-built pipeline (any
/// error-model stage: analytic, Monte-Carlo, per-PE variation).
pub fn layerwise_ter_with(
    pipeline: &ReadPipeline,
    workloads: &[LayerWorkload],
) -> Vec<LayerTerRow> {
    pipeline
        .run_ter("layerwise-ter", workloads)
        .expect("generated workloads always simulate")
        .rows
        .into_iter()
        .map(|row| LayerTerRow {
            layer: row.layer,
            algorithm: row.algorithm,
            ter: row.ter,
            ter_stddev: row.ter_stddev,
            sign_flip_rate: row.sign_flip_rate,
            macs_per_output: row.macs_per_output,
            ber: row.ber,
        })
        .collect()
}

/// Geometric-mean TER reduction of `algorithm` relative to the baseline over
/// the given rows, plus the maximum per-layer reduction.
pub fn ter_reduction(rows: &[LayerTerRow], algorithm: &str) -> (f64, f64) {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    let mut max = 0.0f64;
    for row in rows.iter().filter(|r| r.algorithm == algorithm) {
        if let Some(base) = rows
            .iter()
            .find(|r| r.layer == row.layer && r.algorithm == "baseline")
        {
            if row.ter > 0.0 && base.ter > 0.0 {
                let reduction = base.ter / row.ter;
                log_sum += reduction.ln();
                count += 1;
                max = max.max(reduction);
            }
        }
    }
    if count == 0 {
        (1.0, 1.0)
    } else {
        ((log_sum / count as f64).exp(), max)
    }
}

/// One point of the accuracy figures (Figs. 10 and 11).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPoint {
    /// Operating corner name.
    pub condition: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Mean top-1 accuracy over the seeds.
    pub top1: f64,
    /// Mean top-k accuracy over the seeds.
    pub topk: f64,
    /// Mean per-layer BER used for the injection (for the record).
    pub mean_ber: f64,
}

/// Runs the accuracy-under-PVTA experiment for one model.
///
/// For every (corner, algorithm) pair the per-layer TERs of the *full-size*
/// workloads are converted to BERs via Eq. (1), matched to the scaled
/// executable model's convolution layers by name, and the dataset is
/// evaluated under error injection with `seeds` different seeds.
///
/// # Errors
///
/// Propagates evaluation errors from the model (shape mismatches).
#[allow(clippy::too_many_arguments)]
pub fn accuracy_sweep(
    model: &Model,
    dataset: &Dataset,
    workloads: &[LayerWorkload],
    algorithms: &[Algorithm],
    conditions: &[OperatingCondition],
    array: &ArrayConfig,
    delay: &DelayModel,
    seeds: u64,
    top_k: usize,
) -> Result<Vec<AccuracyPoint>, qnn::QnnError> {
    let mut builder = ReadPipeline::builder()
        .array(*array)
        .error_model(DelayErrorModel::new(*delay))
        .conditions(conditions.iter().copied())
        .evaluator(TopKEvaluator::new(top_k))
        .parallel();
    for &algorithm in algorithms {
        builder = builder.source(algorithm);
    }
    let pipeline = builder
        .build()
        .expect("sweep pipeline configuration is valid");
    let report = pipeline
        .run_accuracy_for(model, "accuracy-sweep", dataset, workloads, seeds)
        .map_err(|e| match e {
            read_pipeline::PipelineError::Eval(q) => q,
            other => qnn::QnnError::dataset(other.to_string()),
        })?;
    Ok(report
        .points
        .into_iter()
        .map(|p| AccuracyPoint {
            condition: p.condition,
            algorithm: p.algorithm,
            top1: p.top1,
            topk: p.topk,
            mean_ber: p.mean_ber,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{vgg16_workloads, WorkloadConfig};
    use read_core::SortCriterion;

    fn tiny_workloads() -> Vec<LayerWorkload> {
        let config = WorkloadConfig {
            pixels_per_layer: 1,
            ..WorkloadConfig::default()
        };
        // Only the two smallest layers to keep the test fast.
        vgg16_workloads(&config).into_iter().take(2).collect()
    }

    #[test]
    fn algorithm_names_are_distinct() {
        let names: Vec<String> = Algorithm::paper_set().iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|n| !n.is_empty()));
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }

    #[test]
    fn reordering_reduces_ter_in_layerwise_experiment() {
        let workloads = tiny_workloads();
        let rows = layerwise_ter(
            &workloads,
            &Algorithm::paper_set(),
            &ArrayConfig::paper_default(),
            &DelayModel::nangate15_like(),
            &OperatingCondition::aging_vt(10.0, 0.05),
        );
        assert_eq!(rows.len(), workloads.len() * 3);
        let (geo, max) = ter_reduction(&rows, &Algorithm::Reorder(SortCriterion::SignFirst).name());
        assert!(geo > 1.0, "reorder should reduce TER, got {geo}x");
        assert!(max >= geo);
    }

    #[test]
    fn histograms_reused_across_conditions_are_consistent() {
        let workloads = tiny_workloads();
        let hist = layer_report(
            &workloads[0],
            Algorithm::Baseline,
            &ArrayConfig::paper_default(),
        );
        let delay = DelayModel::nangate15_like();
        let ideal = hist.ter(&delay, &OperatingCondition::ideal());
        let worst = hist.ter(&delay, &OperatingCondition::aging_vt(10.0, 0.05));
        assert!(worst > ideal);
    }

    #[test]
    fn ter_reduction_handles_missing_algorithm() {
        let rows = vec![];
        assert_eq!(ter_reduction(&rows, "reorder[sign_first]"), (1.0, 1.0));
    }

    #[test]
    fn stored_corner_sweep_amortizes_repeat_runs() {
        use read_pipeline::{MemoryStore, SerialExecutor};
        let workloads = tiny_workloads();
        let plan = SweepPlan::new()
            .condition(OperatingCondition::aging_vt(10.0, 0.05))
            .typical();
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::new());
        let (cold, cold_stats) = corner_sweep_stored(
            SerialExecutor,
            Arc::clone(&store),
            &[Algorithm::Baseline],
            &ArrayConfig::paper_default(),
            plan.clone(),
            &workloads,
        );
        assert_eq!(cold_stats.misses as usize, workloads.len());
        let (warm, warm_stats) = corner_sweep_stored(
            SerialExecutor,
            store,
            &[Algorithm::Baseline],
            &ArrayConfig::paper_default(),
            plan,
            &workloads,
        );
        assert_eq!(warm_stats.misses, 0, "schedules served from the store");
        assert_eq!(
            warm_stats.hist_misses, 0,
            "histograms served from the store"
        );
        assert_eq!(cold.to_json(), warm.to_json());
    }

    #[test]
    fn monte_carlo_figure_pipeline_reports_spread() {
        use read_pipeline::MonteCarloErrorModel;
        let workloads = tiny_workloads();
        let pipeline = figure_pipeline_with_model(
            &[Algorithm::Baseline],
            &ArrayConfig::paper_default(),
            MonteCarloErrorModel::new(16, 3),
            &[OperatingCondition::aging_vt(10.0, 0.05)],
        );
        let rows = layerwise_ter_with(&pipeline, &workloads);
        assert_eq!(rows.len(), workloads.len());
        assert!(rows.iter().all(|r| r.ter_stddev.is_some()));
        // Analytic rows carry no spread.
        let analytic = layerwise_ter(
            &workloads,
            &[Algorithm::Baseline],
            &ArrayConfig::paper_default(),
            &DelayModel::nangate15_like(),
            &OperatingCondition::aging_vt(10.0, 0.05),
        );
        assert!(analytic.iter().all(|r| r.ter_stddev.is_none()));
    }
}
