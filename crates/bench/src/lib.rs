//! Experiment harness for the READ reproduction.
//!
//! The benches under `benches/` regenerate every table and figure of the
//! paper's evaluation section; this library holds the shared machinery:
//! workload construction (synthetic trained layers of the paper's
//! networks), schedule construction for the compared algorithms, TER / BER /
//! accuracy experiment runners, and plain-text table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod workloads;

pub use experiments::{
    accuracy_sweep, corner_sweep, corner_sweep_on, corner_sweep_stored, figure_pipeline,
    layer_report, layerwise_ter, ter_reduction, AccuracyPoint, LayerTerRow,
};
pub use read_pipeline::Algorithm;
pub use workloads::{resnet18_workloads, vgg16_workloads, LayerWorkload, WorkloadConfig};
