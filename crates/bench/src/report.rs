//! Plain-text table printing for the figure benches.
//!
//! Every bench prints its data series with these helpers so the
//! `cargo bench` output doubles as the reproduction record collected in
//! `EXPERIMENTS.md`.

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a table: a header row followed by data rows, columns separated by
/// ` | ` and padded to the widest cell.
pub fn table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Formats a rate in scientific notation with three significant digits.
pub fn sci(value: f64) -> String {
    format!("{value:.3e}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(sci(0.000123), "1.230e-4");
        assert_eq!(pct(0.9371), "93.7%");
    }

    #[test]
    fn table_does_not_panic_on_ragged_rows() {
        table(
            &["a", "b"],
            &[
                vec!["1".into()],
                vec!["22".into(), "333".into(), "x".into()],
            ],
        );
        section("smoke");
    }
}
