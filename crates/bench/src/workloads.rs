//! Re-export of the workload vocabulary, which moved into
//! [`read_pipeline::workload`] so that every pipeline consumer shares it.

pub use read_pipeline::workload::{
    resnet18_workloads, resnet34_workloads, vgg16_workloads, LayerWorkload, WorkloadConfig,
};
