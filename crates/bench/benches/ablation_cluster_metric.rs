//! Ablation: clustering metric — the paper's sign-difference (Manhattan on
//! weight signs) against Euclidean distance on the raw weight values.

use accel_sim::ArrayConfig;
use read_bench::report;
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_core::{ClusteringMode, DistanceMetric, ReadConfig, SortCriterion};
use read_pipeline::{DelayErrorModel, ReadPipeline};
use timing::{DelayModel, OperatingCondition};

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 4,
        ..WorkloadConfig::default()
    };
    let array = ArrayConfig::paper_default();
    let delay = DelayModel::nangate15_like();
    let condition = OperatingCondition::aging_vt(10.0, 0.05);
    let workloads = vgg16_workloads(&config);

    report::section("Ablation: clustering metric (cluster-then-reorder, aging 10y + 5% VT)");
    let mut rows = Vec::new();
    for (label, metric) in [
        ("sign difference (paper)", DistanceMetric::SignManhattan),
        ("euclidean on values", DistanceMetric::Euclidean),
    ] {
        let pipeline = ReadPipeline::builder()
            .array(array)
            .error_model(DelayErrorModel::new(delay))
            .condition(condition)
            .optimizer(ReadConfig {
                criterion: SortCriterion::SignFirst,
                clustering: ClusteringMode::ClusterThenReorder,
                metric,
                ..ReadConfig::default()
            })
            .parallel()
            .build()
            .expect("valid pipeline");
        let net = pipeline
            .run_ter("cluster-metric", &workloads)
            .expect("simulates");
        let mut log_ter = 0.0;
        let mut n = 0usize;
        for row in &net.rows {
            if row.ter > 0.0 {
                log_ter += row.ter.ln();
                n += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            report::sci((log_ter / n.max(1) as f64).exp()),
        ]);
    }
    report::table(
        &["clustering metric", "geo-mean TER over VGG-16 layers"],
        &rows,
    );
    println!();
    println!("(expected: the sign-difference metric matches or beats Euclidean — only the sign");
    println!(" pattern matters for the reorder quality, magnitudes just add noise)");
}
