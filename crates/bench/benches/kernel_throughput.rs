//! Criterion micro-benchmarks of the computational kernels: input-channel
//! reordering, balanced clustering, and the cycle-level MAC simulation.
//!
//! These measure the cost of deploying READ (an offline, per-layer
//! optimization) and of the simulator itself; they are not paper figures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use accel_sim::{ArrayConfig, Dataflow, GemmProblem, Matrix, NullObserver, SimOptions};
use qnn::init::{synthetic_activations, WeightInit};
use read_core::{
    sort_input_channels, BalancedKMeans, ClusteringMode, DistanceMetric, ReadConfig,
    ReadOptimizer, SortCriterion,
};

fn demo_weights(rows: usize, cols: usize) -> Matrix<i8> {
    let mut init = WeightInit::new(1234);
    Matrix::from_fn(rows, cols, |_, _| init.weight(rows))
}

fn bench_reorder(c: &mut Criterion) {
    let weights = demo_weights(1152, 256);
    let cols: Vec<usize> = (0..4).collect();
    c.bench_function("reorder/sign_first 1152x4", |b| {
        b.iter(|| {
            sort_input_channels(black_box(&weights), black_box(&cols), SortCriterion::SignFirst)
                .expect("sortable")
        })
    });
}

fn bench_cluster(c: &mut Criterion) {
    let weights = demo_weights(1152, 256);
    c.bench_function("cluster/balanced_kmeans 256ch into 4s", |b| {
        b.iter(|| {
            BalancedKMeans::new(4, DistanceMetric::SignManhattan)
                .with_max_iterations(10)
                .run(black_box(&weights))
                .expect("clusterable")
        })
    });
}

fn bench_full_optimize(c: &mut Criterion) {
    let weights = demo_weights(576, 128);
    let optimizer = ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    });
    c.bench_function("optimize/cluster_then_reorder 576x128", |b| {
        b.iter(|| optimizer.optimize(black_box(&weights), 4).expect("optimizable"))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let weights = demo_weights(576, 16);
    let acts = synthetic_activations(576 * 8, 0.45, 7);
    let activations = Matrix::from_fn(576, 8, |r, p| acts[r * 8 + p]);
    let problem = GemmProblem::new(weights, activations).expect("consistent");
    let array = ArrayConfig::paper_default();
    c.bench_function("simulate/output_stationary 576x16x8", |b| {
        b.iter(|| {
            let mut obs = NullObserver;
            problem
                .simulate(
                    black_box(&array),
                    Dataflow::OutputStationary,
                    &SimOptions::exhaustive(),
                    &mut obs,
                )
                .expect("simulates")
        })
    });
}

criterion_group!(
    benches,
    bench_reorder,
    bench_cluster,
    bench_full_optimize,
    bench_simulation
);
criterion_main!(benches);
