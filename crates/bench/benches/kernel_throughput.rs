//! Micro-benchmarks of the computational kernels: the word-parallel
//! (bit-sliced) kernels against their scalar references, plus input-channel
//! reordering, balanced clustering, the cycle-level MAC simulation, and the
//! end-to-end pipeline (serial vs parallel, cold vs warm schedule cache).
//!
//! These measure the cost of deploying READ (an offline, per-layer
//! optimization) and of the harness itself; they are not paper figures.
//! Criterion is not available offline, so this uses a small built-in
//! timing harness (median of repeated timed runs after warmup).
//!
//! The kernel A/B section times each packed kernel against the scalar
//! reference it replaced *in the same run* and verifies byte-identical
//! results while doing so.  Pass `--json <path>` to additionally write the
//! measurements as a machine-readable record (the committed `BENCH_<pr>.json`
//! perf trajectory), and `--kernels-only` to skip the legacy macro benches.

use std::hint::black_box;
use std::time::Instant;

use accel_sim::{
    bitplane, ArrayConfig, Dataflow, DepthWord, GemmProblem, Matrix, NullObserver, ScalarPath,
    SimOptions,
};
use qnn::init::{synthetic_activations, WeightInit};
use read_bench::experiments::{figure_pipeline, Algorithm};
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_core::{
    sign_flips_for_order_packed, sign_flips_for_order_scalar, sign_flips_for_order_with,
    sort_input_channels, BalancedKMeans, ClusteringMode, DistanceMetric, ReadConfig, ReadOptimizer,
    SignFlipScratch, SortCriterion,
};
use timing::{DelayModel, DepthHistogram, OperatingCondition};

/// Times an A/B pair with interleaved samples (alternating before/after
/// runs, so frequency drift and scheduler noise hit both sides equally)
/// and returns each side's best observed time in seconds.  Minimum rather
/// than median: for a deterministic compute kernel the fastest run is the
/// least-interfered-with one.
fn time_ab(runs: usize, mut before: impl FnMut(), mut after: impl FnMut()) -> (f64, f64) {
    before();
    after(); // warmup both sides
    let mut best_before = f64::INFINITY;
    let mut best_after = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        before();
        best_before = best_before.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        after();
        best_after = best_after.min(start.elapsed().as_secs_f64());
    }
    (best_before, best_after)
}

/// Times `f` (median of `runs` timed executions after one warmup) and
/// prints a criterion-style line.
fn bench(name: &str, runs: usize, mut f: impl FnMut()) {
    f(); // warmup
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name:<48} median {:>10}  [{} .. {}]",
        fmt(median),
        fmt(lo),
        fmt(hi)
    );
}

fn fmt(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} us", seconds * 1e6)
    }
}

fn demo_weights(rows: usize, cols: usize) -> Matrix<i8> {
    let mut init = WeightInit::new(1234);
    Matrix::from_fn(rows, cols, |_, _| init.weight(rows))
}

/// One scalar-vs-packed kernel measurement.
struct KernelRecord {
    /// Kernel identifier, including the benchmarked shape.
    kernel: String,
    /// Elements (lanes/MACs) processed per run.
    elems: u64,
    /// Median seconds per run of the scalar reference.
    before_s: f64,
    /// Median seconds per run of the packed kernel.
    after_s: f64,
}

impl KernelRecord {
    fn ns_per_elem(&self, seconds: f64) -> f64 {
        seconds * 1e9 / self.elems as f64
    }

    fn elems_per_sec(&self, seconds: f64) -> f64 {
        self.elems as f64 / seconds
    }

    fn speedup(&self) -> f64 {
        self.before_s / self.after_s
    }

    fn print(&self) {
        println!(
            "kernel {:<40} scalar {:>8.3} ns/elem  packed {:>8.3} ns/elem  speedup {:.2}x",
            self.kernel,
            self.ns_per_elem(self.before_s),
            self.ns_per_elem(self.after_s),
            self.speedup()
        );
    }
}

fn side_json(record: &KernelRecord, seconds: f64) -> String {
    format!(
        "{{ \"seconds\": {seconds:.9}, \"ns_per_elem\": {:.4}, \"elems_per_sec\": {:.4e} }}",
        record.ns_per_elem(seconds),
        record.elems_per_sec(seconds)
    )
}

fn to_json(records: &[KernelRecord]) -> String {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"elems\": {}, \"before\": {}, \"after\": {}, \"speedup\": {:.3} }}{}\n",
            r.kernel,
            r.elems,
            side_json(r, r.before_s),
            side_json(r, r.after_s),
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the scalar-vs-packed A/B benches, asserting byte-identical results.
fn run_kernel_benches() -> Vec<KernelRecord> {
    let mut records = Vec::new();

    // Sign-flip scoring: the optimizer's objective over a VGG-16-sized
    // layer (1152 reduction rows x 256 output channels).
    let weights = demo_weights(1152, 256);
    let columns: Vec<usize> = (0..weights.cols()).collect();
    let order: Vec<usize> = (0..weights.rows()).rev().collect();
    let elems = (weights.rows() * weights.cols()) as u64;
    let mut scratch = SignFlipScratch::new();
    let acts: Vec<i8> = {
        let mut init = WeightInit::new(99);
        (0..weights.rows()).map(|_| init.weight(64).abs()).collect()
    };
    for (name, activations) in [
        ("signflip/packed_unit_1152x256", None),
        ("signflip/packed_products_1152x256", Some(acts.as_slice())),
    ] {
        let expected =
            sign_flips_for_order_scalar(&weights, &columns, &order, activations).expect("scores");
        assert_eq!(
            sign_flips_for_order_packed(&mut scratch, &weights, &columns, &order, activations)
                .expect("scores"),
            expected,
            "packed scoring diverged from scalar"
        );
        let (before, after) = time_ab(
            20,
            || {
                black_box(
                    sign_flips_for_order_scalar(
                        black_box(&weights),
                        &columns,
                        black_box(&order),
                        activations,
                    )
                    .expect("scores"),
                );
            },
            || {
                black_box(
                    sign_flips_for_order_packed(
                        &mut scratch,
                        black_box(&weights),
                        &columns,
                        black_box(&order),
                        activations,
                    )
                    .expect("scores"),
                );
            },
        );
        records.push(KernelRecord {
            kernel: name.into(),
            elems,
            before_s: before,
            after_s: after,
        });
    }

    // The routed scoring path: the allocation-free scalar kernel against
    // the seed's allocating reference (this is what the optimizer calls).
    let (before, after) = time_ab(
        20,
        || {
            black_box(
                sign_flips_for_order_scalar(black_box(&weights), &columns, black_box(&order), None)
                    .expect("scores"),
            );
        },
        || {
            black_box(
                sign_flips_for_order_with(
                    &mut scratch,
                    black_box(&weights),
                    &columns,
                    black_box(&order),
                    None,
                )
                .expect("scores"),
            );
        },
    );
    records.push(KernelRecord {
        kernel: "signflip/zero_alloc_unit_1152x256".into(),
        elems,
        before_s: before,
        after_s: after,
    });

    // GEMM depth-histogram simulation: the packed bit-plane psum-depth
    // kernel against the scalar MacUnit path, same problem, same observer
    // semantics (`ScalarPath` pins the scalar route).
    let sim_weights = demo_weights(576, 16);
    let acts = synthetic_activations(576 * 64, 0.45, 7);
    let activations = Matrix::from_fn(576, 64, |r, p| acts[r * 64 + p]);
    let problem = GemmProblem::new(sim_weights, activations).expect("consistent");
    let array = ArrayConfig::paper_default();
    let options = SimOptions::exhaustive();
    let mut scalar_hist = ScalarPath(DepthHistogram::new());
    problem
        .simulate(
            &array,
            Dataflow::OutputStationary,
            &options,
            &mut scalar_hist,
        )
        .expect("simulates");
    let mut packed_hist = DepthHistogram::new();
    problem
        .simulate(
            &array,
            Dataflow::OutputStationary,
            &options,
            &mut packed_hist,
        )
        .expect("simulates");
    assert_eq!(
        packed_hist, scalar_hist.0,
        "packed depth histogram diverged from scalar"
    );
    let (before, after) = time_ab(
        10,
        || {
            let mut obs = ScalarPath(DepthHistogram::new());
            problem
                .simulate(&array, Dataflow::OutputStationary, &options, &mut obs)
                .expect("simulates");
            black_box(&obs);
        },
        || {
            let mut obs = DepthHistogram::new();
            problem
                .simulate(&array, Dataflow::OutputStationary, &options, &mut obs)
                .expect("simulates");
            black_box(&obs);
        },
    );
    records.push(KernelRecord {
        kernel: "gemm/depth_histogram_576x16x64".into(),
        elems: (576 * 16 * 64) as u64,
        before_s: before,
        after_s: after,
    });

    // Histogram accumulation: packed word-at-a-time recording against the
    // per-lane scalar path over pre-generated depth words.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let words: Vec<DepthWord> = (0..4096)
        .map(|_| {
            let mut depth_planes = [0u64; bitplane::DEPTH_PLANES];
            for plane in depth_planes.iter_mut() {
                *plane = next();
            }
            DepthWord {
                depth_planes,
                sign_flips: next(),
                lane_mask: !0,
            }
        })
        .collect();
    let lanes: Vec<(u32, bool)> = words
        .iter()
        .flat_map(|w| (0..64).map(move |l| (w.depth(l), w.sign_flip(l))))
        .collect();
    let mut scalar = DepthHistogram::new();
    for &(d, f) in &lanes {
        scalar.record_depth(d, f);
    }
    let mut packed = DepthHistogram::new();
    for w in &words {
        packed.record_word(w);
    }
    assert_eq!(packed, scalar, "packed histogram recording diverged");
    let (before, after) = time_ab(
        30,
        || {
            let mut h = DepthHistogram::new();
            for &(d, f) in black_box(&lanes) {
                h.record_depth(d, f);
            }
            black_box(&h);
        },
        || {
            let mut h = DepthHistogram::new();
            for w in black_box(&words) {
                h.record_word(w);
            }
            black_box(&h);
        },
    );
    records.push(KernelRecord {
        kernel: "histogram/record_4096x64".into(),
        elems: lanes.len() as u64,
        before_s: before,
        after_s: after,
    });

    for r in &records {
        r.print();
    }
    records
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut kernels_only = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json_path = Some(argv.next().expect("--json requires a path")),
            "--kernels-only" => kernels_only = true,
            "--bench" => {} // forwarded by `cargo bench`
            other => eprintln!("ignoring unknown argument: {other}"),
        }
    }

    let records = run_kernel_benches();
    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&records)).expect("writable --json path");
        println!("wrote kernel records to {path}");
    }
    if kernels_only {
        return;
    }

    let weights = demo_weights(1152, 256);
    let cols: Vec<usize> = (0..4).collect();
    bench("reorder/sign_first 1152x4", 20, || {
        black_box(
            sort_input_channels(
                black_box(&weights),
                black_box(&cols),
                SortCriterion::SignFirst,
            )
            .expect("sortable"),
        );
    });

    bench("cluster/balanced_kmeans 256ch into 4s", 10, || {
        black_box(
            BalancedKMeans::new(4, DistanceMetric::SignManhattan)
                .with_max_iterations(10)
                .run(black_box(&weights))
                .expect("clusterable"),
        );
    });

    let opt_weights = demo_weights(576, 128);
    let optimizer = ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    });
    bench("optimize/cluster_then_reorder 576x128", 10, || {
        black_box(
            optimizer
                .optimize(black_box(&opt_weights), 4)
                .expect("optimizable"),
        );
    });

    let sim_weights = demo_weights(576, 16);
    let acts = synthetic_activations(576 * 8, 0.45, 7);
    let activations = Matrix::from_fn(576, 8, |r, p| acts[r * 8 + p]);
    let problem = GemmProblem::new(sim_weights, activations).expect("consistent");
    let array = ArrayConfig::paper_default();
    bench("simulate/output_stationary 576x16x8", 10, || {
        let mut obs = NullObserver;
        black_box(
            problem
                .simulate(
                    black_box(&array),
                    Dataflow::OutputStationary,
                    &SimOptions::exhaustive(),
                    &mut obs,
                )
                .expect("simulates"),
        );
    });

    // End-to-end pipeline: the Fig. 8 shape over the first VGG-16 layers,
    // serial vs parallel, and warm-cache re-run.
    let config = WorkloadConfig {
        pixels_per_layer: 2,
        ..WorkloadConfig::default()
    };
    let workloads: Vec<_> = vgg16_workloads(&config).into_iter().take(6).collect();
    let delay = DelayModel::nangate15_like();
    let condition = OperatingCondition::aging_vt(10.0, 0.05);
    let algorithms = Algorithm::paper_set();

    let serial = read_pipeline::ReadPipeline::builder()
        .array(array)
        .error_model(read_pipeline::DelayErrorModel::new(delay))
        .condition(condition)
        .source(algorithms[0])
        .source(algorithms[1])
        .source(algorithms[2])
        .build()
        .expect("valid pipeline");
    bench("pipeline/run_ter 6 layers x 3 algos (serial)", 3, || {
        black_box(
            serial
                .run_ter("bench", black_box(&workloads))
                .expect("runs"),
        );
    });

    let parallel = figure_pipeline(&algorithms, &array, &delay, &[condition]);
    bench("pipeline/run_ter 6 layers x 3 algos (parallel)", 3, || {
        black_box(
            parallel
                .run_ter("bench", black_box(&workloads))
                .expect("runs"),
        );
    });
    let stats = parallel.cache_stats();
    println!(
        "schedule cache after parallel runs: {} hits / {} misses / {} entries",
        stats.hits, stats.misses, stats.entries
    );
    // Repeated runs are served from the histogram cache one level up, so
    // schedule hits stay flat while histogram hits grow per iteration.
    println!(
        "histogram cache after parallel runs: {} hits / {} misses / {} entries",
        stats.hist_hits, stats.hist_misses, stats.hist_entries
    );
}
