//! Micro-benchmarks of the computational kernels: input-channel reordering,
//! balanced clustering, the cycle-level MAC simulation, and the end-to-end
//! pipeline (serial vs parallel, cold vs warm schedule cache).
//!
//! These measure the cost of deploying READ (an offline, per-layer
//! optimization) and of the harness itself; they are not paper figures.
//! Criterion is not available offline, so this uses a small built-in
//! timing harness (median of repeated timed runs after warmup).

use std::hint::black_box;
use std::time::Instant;

use accel_sim::{ArrayConfig, Dataflow, GemmProblem, Matrix, NullObserver, SimOptions};
use qnn::init::{synthetic_activations, WeightInit};
use read_bench::experiments::{figure_pipeline, Algorithm};
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_core::{
    sort_input_channels, BalancedKMeans, ClusteringMode, DistanceMetric, ReadConfig, ReadOptimizer,
    SortCriterion,
};
use timing::{DelayModel, OperatingCondition};

/// Times `f` (median of `runs` timed executions after one warmup) and
/// prints a criterion-style line.
fn bench(name: &str, runs: usize, mut f: impl FnMut()) {
    f(); // warmup
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name:<48} median {:>10}  [{} .. {}]",
        fmt(median),
        fmt(lo),
        fmt(hi)
    );
}

fn fmt(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} us", seconds * 1e6)
    }
}

fn demo_weights(rows: usize, cols: usize) -> Matrix<i8> {
    let mut init = WeightInit::new(1234);
    Matrix::from_fn(rows, cols, |_, _| init.weight(rows))
}

fn main() {
    let weights = demo_weights(1152, 256);
    let cols: Vec<usize> = (0..4).collect();
    bench("reorder/sign_first 1152x4", 20, || {
        black_box(
            sort_input_channels(
                black_box(&weights),
                black_box(&cols),
                SortCriterion::SignFirst,
            )
            .expect("sortable"),
        );
    });

    bench("cluster/balanced_kmeans 256ch into 4s", 10, || {
        black_box(
            BalancedKMeans::new(4, DistanceMetric::SignManhattan)
                .with_max_iterations(10)
                .run(black_box(&weights))
                .expect("clusterable"),
        );
    });

    let opt_weights = demo_weights(576, 128);
    let optimizer = ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    });
    bench("optimize/cluster_then_reorder 576x128", 10, || {
        black_box(
            optimizer
                .optimize(black_box(&opt_weights), 4)
                .expect("optimizable"),
        );
    });

    let sim_weights = demo_weights(576, 16);
    let acts = synthetic_activations(576 * 8, 0.45, 7);
    let activations = Matrix::from_fn(576, 8, |r, p| acts[r * 8 + p]);
    let problem = GemmProblem::new(sim_weights, activations).expect("consistent");
    let array = ArrayConfig::paper_default();
    bench("simulate/output_stationary 576x16x8", 10, || {
        let mut obs = NullObserver;
        black_box(
            problem
                .simulate(
                    black_box(&array),
                    Dataflow::OutputStationary,
                    &SimOptions::exhaustive(),
                    &mut obs,
                )
                .expect("simulates"),
        );
    });

    // End-to-end pipeline: the Fig. 8 shape over the first VGG-16 layers,
    // serial vs parallel, and warm-cache re-run.
    let config = WorkloadConfig {
        pixels_per_layer: 2,
        ..WorkloadConfig::default()
    };
    let workloads: Vec<_> = vgg16_workloads(&config).into_iter().take(6).collect();
    let delay = DelayModel::nangate15_like();
    let condition = OperatingCondition::aging_vt(10.0, 0.05);
    let algorithms = Algorithm::paper_set();

    let serial = read_pipeline::ReadPipeline::builder()
        .array(array)
        .error_model(read_pipeline::DelayErrorModel::new(delay))
        .condition(condition)
        .source(algorithms[0])
        .source(algorithms[1])
        .source(algorithms[2])
        .build()
        .expect("valid pipeline");
    bench("pipeline/run_ter 6 layers x 3 algos (serial)", 3, || {
        black_box(
            serial
                .run_ter("bench", black_box(&workloads))
                .expect("runs"),
        );
    });

    let parallel = figure_pipeline(&algorithms, &array, &delay, &[condition]);
    bench("pipeline/run_ter 6 layers x 3 algos (parallel)", 3, || {
        black_box(
            parallel
                .run_ter("bench", black_box(&workloads))
                .expect("runs"),
        );
    });
    let stats = parallel.cache_stats();
    println!(
        "schedule cache after parallel runs: {} hits / {} misses / {} entries",
        stats.hits, stats.misses, stats.entries
    );
    // Repeated runs are served from the histogram cache one level up, so
    // schedule hits stay flat while histogram hits grow per iteration.
    println!(
        "histogram cache after parallel runs: {} hits / {} misses / {} entries",
        stats.hist_hits, stats.hist_misses, stats.hist_entries
    );
}
