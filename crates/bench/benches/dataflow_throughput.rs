//! Throughput of the event-driven dataflow engine: MAC events per second
//! against the analytic engine on the same lowered schedule, and the
//! overhead of recording a Chrome trace while simulating.
//!
//! Same harness as `kernel_throughput`: interleaved A/B samples (minimum
//! of repeated timed runs after warmup) with byte-identical-result checks
//! inside the measured pairs, and `--json <path>` to write the committed
//! `BENCH_<pr>.json` perf-trajectory record.
//!
//! Two A/B families, each under both dataflows:
//!
//! * `engine_vs_analytic` — before = `simulate_with_schedule` (closed-form
//!   loop nest), after = `run_dataflow` (contexts + bounded channels).
//!   The "speedup" is the slowdown factor you pay for per-cycle dynamics.
//! * `trace_overhead` — before = event engine without a recorder, after =
//!   with a `TraceRecorder` attached (rendering excluded; that is the
//!   writer's cost, measured separately as `trace_render`).

use std::hint::black_box;
use std::time::Instant;

use accel_sim::{ArrayConfig, ComputeSchedule, Dataflow, GemmProblem, Matrix, SimOptions};
use dataflow_sim::{run_dataflow, EngineConfig, TraceRecorder};
use qnn::init::{synthetic_activations, WeightInit};
use timing::DepthHistogram;

/// Times an A/B pair with interleaved samples, returning each side's best
/// observed seconds (see `kernel_throughput` for the rationale).
fn time_ab(runs: usize, mut before: impl FnMut(), mut after: impl FnMut()) -> (f64, f64) {
    before();
    after(); // warmup both sides
    let mut best_before = f64::INFINITY;
    let mut best_after = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        before();
        best_before = best_before.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        after();
        best_after = best_after.min(start.elapsed().as_secs_f64());
    }
    (best_before, best_after)
}

/// One A/B measurement over `elems` MAC events per run.
struct Record {
    kernel: String,
    elems: u64,
    before_s: f64,
    after_s: f64,
}

impl Record {
    fn ns_per_elem(&self, seconds: f64) -> f64 {
        seconds * 1e9 / self.elems as f64
    }

    fn elems_per_sec(&self, seconds: f64) -> f64 {
        self.elems as f64 / seconds
    }

    fn speedup(&self) -> f64 {
        self.before_s / self.after_s
    }

    fn print(&self) {
        println!(
            "dataflow {:<42} before {:>8.3} ns/mac ({:.3e} macs/s)  after {:>8.3} ns/mac  speedup {:.2}x",
            self.kernel,
            self.ns_per_elem(self.before_s),
            self.elems_per_sec(self.before_s),
            self.ns_per_elem(self.after_s),
            self.speedup()
        );
    }
}

fn side_json(record: &Record, seconds: f64) -> String {
    format!(
        "{{ \"seconds\": {seconds:.9}, \"ns_per_elem\": {:.4}, \"elems_per_sec\": {:.4e} }}",
        record.ns_per_elem(seconds),
        record.elems_per_sec(seconds)
    )
}

fn to_json(records: &[Record]) -> String {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"elems\": {}, \"before\": {}, \"after\": {}, \"speedup\": {:.3} }}{}\n",
            r.kernel,
            r.elems,
            side_json(r, r.before_s),
            side_json(r, r.after_s),
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json_path = Some(argv.next().expect("--json requires a path")),
            "--bench" => {} // forwarded by `cargo bench`
            other => eprintln!("ignoring unknown argument: {other}"),
        }
    }

    // A VGG-sized reduction (576 rows) over 16 output channels and 8
    // pixels: 73728 MAC events per run, with multiple WS row tiles on the
    // paper-default 16-row array so the spill/reload path is exercised.
    let (rows, cols, pixels) = (576usize, 16usize, 8usize);
    let mut init = WeightInit::new(1234);
    let weights = Matrix::from_fn(rows, cols, |_, _| init.weight(rows));
    let acts = synthetic_activations(rows * pixels, 0.45, 7);
    let activations = Matrix::from_fn(rows, pixels, |r, p| acts[r * pixels + p]);
    let problem = GemmProblem::new(weights, activations).expect("consistent");
    let array = ArrayConfig::paper_default();
    let schedule = ComputeSchedule::baseline(rows, cols, array.cols());
    let options = SimOptions::exhaustive();
    let config = EngineConfig::default();
    let elems = (rows * cols * pixels) as u64;

    let mut records = Vec::new();
    for dataflow in Dataflow::ALL {
        // Byte-identity inside the measured pair: the engine earns its
        // numbers only while producing the analytic path's exact bytes.
        let mut analytic = DepthHistogram::new();
        let reference = problem
            .simulate_with_schedule(&array, dataflow, &schedule, &options, &mut analytic)
            .expect("analytic run");
        let mut event = DepthHistogram::new();
        let run = run_dataflow(
            &problem, &array, dataflow, &schedule, &options, &config, &mut event, None,
        )
        .expect("event run");
        assert_eq!(event.to_wire(), analytic.to_wire(), "histogram diverged");
        assert_eq!(run.outputs, reference.outputs, "outputs diverged");

        let (before, after) = time_ab(
            10,
            || {
                let mut obs = DepthHistogram::new();
                black_box(
                    problem
                        .simulate_with_schedule(
                            black_box(&array),
                            dataflow,
                            black_box(&schedule),
                            &options,
                            &mut obs,
                        )
                        .expect("analytic run"),
                );
            },
            || {
                let mut obs = DepthHistogram::new();
                black_box(
                    run_dataflow(
                        black_box(&problem),
                        &array,
                        dataflow,
                        black_box(&schedule),
                        &options,
                        &config,
                        &mut obs,
                        None,
                    )
                    .expect("event run"),
                );
            },
        );
        records.push(Record {
            kernel: format!("{}/engine_vs_analytic_576x16x8", dataflow.name()),
            elems,
            before_s: before,
            after_s: after,
        });

        let (before, after) = time_ab(
            10,
            || {
                let mut obs = DepthHistogram::new();
                black_box(
                    run_dataflow(
                        black_box(&problem),
                        &array,
                        dataflow,
                        &schedule,
                        &options,
                        &config,
                        &mut obs,
                        None,
                    )
                    .expect("event run"),
                );
            },
            || {
                let mut obs = DepthHistogram::new();
                let mut trace = TraceRecorder::new();
                black_box(
                    run_dataflow(
                        black_box(&problem),
                        &array,
                        dataflow,
                        &schedule,
                        &options,
                        &config,
                        &mut obs,
                        Some(&mut trace),
                    )
                    .expect("event run"),
                );
                black_box(&trace);
            },
        );
        records.push(Record {
            kernel: format!("{}/trace_overhead_576x16x8", dataflow.name()),
            elems,
            before_s: before,
            after_s: after,
        });

        // The writer itself: recording (before) vs recording + rendering
        // the Chrome JSON string (after).
        let (before, after) = time_ab(
            10,
            || {
                let mut obs = DepthHistogram::new();
                let mut trace = TraceRecorder::new();
                run_dataflow(
                    &problem,
                    &array,
                    dataflow,
                    &schedule,
                    &options,
                    &config,
                    &mut obs,
                    Some(&mut trace),
                )
                .expect("event run");
                black_box(&trace);
            },
            || {
                let mut obs = DepthHistogram::new();
                let mut trace = TraceRecorder::new();
                run_dataflow(
                    &problem,
                    &array,
                    dataflow,
                    &schedule,
                    &options,
                    &config,
                    &mut obs,
                    Some(&mut trace),
                )
                .expect("event run");
                black_box(trace.to_chrome_json());
            },
        );
        records.push(Record {
            kernel: format!("{}/trace_render_576x16x8", dataflow.name()),
            elems,
            before_s: before,
            after_s: after,
        });
    }

    for r in &records {
        r.print();
    }
    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&records)).expect("writable --json path");
        println!("wrote dataflow records to {path}");
    }
}
