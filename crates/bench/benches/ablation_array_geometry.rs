//! Ablation: array geometry — how the TER reduction scales with the number
//! of array columns (output channels per pass) and, for the
//! weight-stationary dataflow, the number of rows (reduction tile height).

use accel_sim::{ArrayConfig, Dataflow};
use read_bench::experiments::Algorithm;
use read_bench::report;
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_core::SortCriterion;
use read_pipeline::{DelayErrorModel, ReadPipeline};
use timing::{DelayModel, OperatingCondition};

fn ters_for(
    workload: &read_bench::LayerWorkload,
    array: &ArrayConfig,
    dataflow: Dataflow,
    delay: &DelayModel,
    condition: &OperatingCondition,
) -> (f64, f64) {
    let read = Algorithm::ClusterThenReorder(SortCriterion::SignFirst);
    let pipeline = ReadPipeline::builder()
        .array(*array)
        .dataflow(dataflow)
        .error_model(DelayErrorModel::new(*delay))
        .condition(*condition)
        .source(Algorithm::Baseline)
        .source(read)
        .build()
        .expect("valid pipeline");
    let base = pipeline
        .layer_ter(workload, &Algorithm::Baseline, condition)
        .expect("simulates");
    let opt = pipeline
        .layer_ter(workload, &read, condition)
        .expect("simulates");
    (base, opt)
}

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 4,
        ..WorkloadConfig::default()
    };
    let workload = vgg16_workloads(&config)
        .into_iter()
        .find(|w| w.name == "conv4_8")
        .expect("vgg16 plan contains conv4_8");
    let delay = DelayModel::nangate15_like();
    let condition = OperatingCondition::aging_vt(10.0, 0.05);

    report::section(&format!(
        "Ablation: TER reduction vs array columns ({}, output-stationary)",
        workload.name
    ));
    let mut rows = Vec::new();
    for cols in [2usize, 4, 8, 16, 32] {
        let array = ArrayConfig::new(16, cols);
        let (base, opt) = ters_for(
            &workload,
            &array,
            Dataflow::OutputStationary,
            &delay,
            &condition,
        );
        rows.push(vec![
            format!("16x{cols}"),
            report::sci(base),
            report::sci(opt),
            format!("{:.1}x", base / opt.max(1e-300)),
        ]);
    }
    report::table(&["array", "baseline TER", "READ TER", "reduction"], &rows);

    report::section("Ablation: weight-stationary dataflow, rows sweep (reduction tile height)");
    let mut rows = Vec::new();
    for array_rows in [4usize, 16, 64] {
        let array = ArrayConfig::new(array_rows, 4);
        let (base, opt) = ters_for(
            &workload,
            &array,
            Dataflow::WeightStationary,
            &delay,
            &condition,
        );
        rows.push(vec![
            format!("{array_rows}x4"),
            report::sci(base),
            report::sci(opt),
            format!("{:.1}x", base / opt.max(1e-300)),
        ]);
    }
    report::table(&["array", "baseline TER", "READ TER", "reduction"], &rows);
    println!();
    println!("(expected: the reduction shrinks as more output channels share one order, and the");
    println!(
        " weight-stationary dataflow benefits less because partial sums round-trip the buffer)"
    );
}
