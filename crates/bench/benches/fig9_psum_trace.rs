//! Fig. 9: the accumulation of the partial sum on one MAC unit during
//! several consecutive convolutions, in the original and the reordered
//! sequence.
//!
//! With the READ ordering the partial sum rises monotonically and then
//! falls, so the sign flips at most once per output; the original order
//! repeatedly crosses zero.

use accel_sim::{ArrayConfig, PsumTraceRecorder, TeeObserver};
use read_bench::experiments::{figure_pipeline, Algorithm};
use read_bench::report;
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_core::SortCriterion;
use timing::{DelayModel, OperatingCondition};

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 3,
        ..WorkloadConfig::default()
    };
    let workload = vgg16_workloads(&config)
        .into_iter()
        .find(|w| w.name == "conv2_3")
        .expect("vgg16 plan contains conv2_3");
    let array = ArrayConfig::paper_default();
    let algorithms = [
        Algorithm::Baseline,
        Algorithm::ClusterThenReorder(SortCriterion::SignFirst),
    ];
    let pipeline = figure_pipeline(
        &algorithms,
        &array,
        &DelayModel::nangate15_like(),
        &[OperatingCondition::ideal()],
    );

    report::section(&format!(
        "Fig. 9: PSUM accumulation on one MAC while computing 3 outputs ({})",
        workload.name
    ));
    for algorithm in algorithms {
        // Record the PSUM series of output channel 0 over all three pixels.
        let mut tee = TeeObserver::new(
            PsumTraceRecorder::for_channel(0),
            accel_sim::SignFlipStats::new(),
        );
        pipeline
            .observe_layer(&workload, &algorithm, &mut tee)
            .expect("workload simulates");
        let trace = tee.first.trace();
        let flips = tee.first.sign_flip_count();
        println!();
        println!(
            "{} — {} recorded cycles, {} sign flips on this MAC",
            algorithm,
            trace.len(),
            flips
        );
        // Print a compact sparkline-style series: min/max per bucket of the
        // normalized PSUM.
        let buckets = 24usize;
        let max_abs = trace.iter().map(|v| v.unsigned_abs()).max().unwrap_or(1) as f64;
        let per = trace.len().div_ceil(buckets).max(1);
        let mut cells = Vec::new();
        for chunk in trace.chunks(per) {
            let lo = *chunk.iter().min().unwrap() as f64 / max_abs;
            let hi = *chunk.iter().max().unwrap() as f64 / max_abs;
            cells.push(vec![format!("{lo:+.2}"), format!("{hi:+.2}")]);
        }
        let rows: Vec<Vec<String>> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| vec![format!("{}", i * per), c[0].clone(), c[1].clone()])
            .collect();
        report::table(&["cycle", "psum min (norm.)", "psum max (norm.)"], &rows);
    }
    println!();
    println!("(paper: the reordered sequence rises then falls; sign flips drop to ~1 per output)");
}
