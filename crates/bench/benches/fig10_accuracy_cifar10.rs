//! Fig. 10: inference accuracy of VGG-16 and ResNet-18 on a CIFAR-10-class
//! task under the six PVTA corners, for the baseline, reorder and
//! cluster-then-reorder schedules.
//!
//! Layer TERs come from the full-size layer workloads; they are converted to
//! per-layer BERs via Eq. (1) and injected into a width-scaled executable
//! model (the substitution documented in DESIGN.md).  The paper's result to
//! reproduce is the *shape*: the baseline collapses as PVTA stress grows
//! while the READ schedules hold their accuracy over a much wider range.

use accel_sim::ArrayConfig;
use qnn::fit::fit_classifier_head;
use qnn::models;
use qnn::SyntheticDatasetBuilder;
use read_bench::experiments::{accuracy_sweep, Algorithm};
use read_bench::report;
use read_bench::workloads::{resnet18_workloads, vgg16_workloads, WorkloadConfig};
use timing::{paper_conditions, DelayModel};

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 3,
        ..WorkloadConfig::default()
    };
    let array = ArrayConfig::paper_default();
    let delay = DelayModel::nangate15_like();
    let conditions = paper_conditions();
    let algorithms = Algorithm::paper_set();

    let dataset = SyntheticDatasetBuilder::new(10, [3, 32, 32])
        .samples_per_class(4)
        .noise(30.0)
        .seed(0xC1FA)
        .build()
        .expect("dataset builds");

    let networks: Vec<(&str, qnn::Model, Vec<read_bench::LayerWorkload>)> = vec![
        (
            "VGG-16 (CIFAR-10 classes)",
            models::vgg16_cifar_scaled(8, 10, 41).expect("model builds"),
            vgg16_workloads(&config),
        ),
        (
            "ResNet-18 (CIFAR-10 classes)",
            models::resnet18_cifar_scaled(8, 10, 42).expect("model builds"),
            resnet18_workloads(&config),
        ),
    ];

    for (name, mut model, workloads) in networks {
        let clean = fit_classifier_head(&mut model, &dataset).expect("head fits");
        let points = accuracy_sweep(
            &model,
            &dataset,
            &workloads,
            &algorithms,
            &conditions,
            &array,
            &delay,
            3,
            3,
        )
        .expect("sweep runs");

        report::section(&format!(
            "Fig. 10: top-1 accuracy of {name} under PVTA corners (clean accuracy {})",
            report::pct(clean)
        ));
        let mut rows = Vec::new();
        for condition in &conditions {
            let mut cells = vec![condition.name.to_string()];
            for algorithm in &algorithms {
                let p = points
                    .iter()
                    .find(|p| p.condition == condition.name && p.algorithm == algorithm.name())
                    .expect("point exists");
                cells.push(format!(
                    "{} (BER {})",
                    report::pct(p.top1),
                    report::sci(p.mean_ber)
                ));
            }
            rows.push(cells);
        }
        report::table(
            &["corner", "baseline", "reorder", "cluster-then-reorder"],
            &rows,
        );
        println!();
        println!(
            "(paper: baseline accuracy collapses under aging / combined corners; READ keeps it)"
        );
    }
}
