//! Fig. 7: TER with different reordering algorithms as a function of the
//! number of channels per cluster (the array column count Ac).
//!
//! The paper sweeps 4, 8, 16 and 32 channels per cluster on one layer at the
//! 10-year-aging + 5 %-VT corner: reordering becomes less effective as more
//! output channels share one order, and cluster-then-reorder recovers most
//! of the loss.

use accel_sim::ArrayConfig;
use read_bench::experiments::{layer_report, Algorithm};
use read_bench::report;
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_core::SortCriterion;
use timing::{DelayModel, OperatingCondition};

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 6,
        ..WorkloadConfig::default()
    };
    // A 256->256 VGG-16 layer: wide enough to form 32-channel clusters.
    let workload = vgg16_workloads(&config)
        .into_iter()
        .find(|w| w.name == "conv3_6")
        .expect("vgg16 plan contains conv3_6");
    let delay = DelayModel::nangate15_like();
    let condition = OperatingCondition::aging_vt(10.0, 0.05);

    let algorithms = [
        Algorithm::Baseline,
        Algorithm::Reorder(SortCriterion::SignFirst),
        Algorithm::Reorder(SortCriterion::MagFirst),
        Algorithm::ClusterThenReorder(SortCriterion::SignFirst),
    ];

    report::section(&format!(
        "Fig. 7: TER vs channels per cluster ({} at {})",
        workload.name, condition
    ));
    let mut rows = Vec::new();
    for channels_per_cluster in [4usize, 8, 16, 32] {
        let array = ArrayConfig::new(16, channels_per_cluster);
        let mut cells = vec![channels_per_cluster.to_string()];
        for algorithm in algorithms {
            let hist = layer_report(&workload, algorithm, &array);
            cells.push(report::sci(hist.ter(&delay, &condition)));
        }
        rows.push(cells);
    }
    report::table(
        &[
            "channels/cluster",
            "baseline",
            "reorder: sign-first",
            "reorder: mag-first",
            "cluster-then-reorder",
        ],
        &rows,
    );
    println!();
    println!("(paper: all reordering variants sit well below the baseline; sign_first beats");
    println!(" mag_first; cluster-then-reorder is best and degrades most gracefully as Ac grows)");
}
