//! Corner/die sweep table (Fig. 9-style): worst-layer TER of every
//! algorithm at every (die, condition) cell of the sweep grid, plus the
//! cross-corner worst-case summary — the claim the paper's evaluation rests
//! on is that READ's reduction holds *across* corners and process
//! variation, not at one cherry-picked point.
//!
//! The sweep runs as one pipeline pass: schedules are optimized once per
//! (algorithm, layer) and reused by every cell, and the Monte-Carlo trial
//! budget of the typical-silicon cells is sharded across work units
//! (byte-identical to an unsharded run).

use accel_sim::ArrayConfig;
use read_bench::experiments::{corner_sweep, Algorithm};
use read_bench::report;
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_pipeline::SweepPlan;
use timing::paper_conditions;

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 2,
        ..WorkloadConfig::default()
    };
    // A representative cross-section of VGG-16: early, middle and late.
    let workloads: Vec<_> = vgg16_workloads(&config)
        .into_iter()
        .filter(|w| ["conv1_2", "conv3_6", "conv5_11"].contains(&w.name.as_str()))
        .collect();
    let algorithms = Algorithm::paper_set();
    let array = ArrayConfig::paper_default();

    // Typical silicon (Monte-Carlo, 64 trials split into 16-trial shards)
    // plus two specific dies, across all six paper corners.
    let plan = SweepPlan::new()
        .conditions(paper_conditions())
        .typical()
        .dies([3, 4])
        .monte_carlo(64, 0xF168)
        .trials_per_shard(16);
    let sweep = corner_sweep(&algorithms, &array, plan, &workloads);

    report::section(
        "Corner/die sweep: worst-layer TER per cell (VGG-16 cross-section, 16x4 array)",
    );
    let rows: Vec<Vec<String>> = sweep
        .cells
        .iter()
        .map(|cell| {
            let mut cells_out = vec![cell.die.clone(), cell.condition.clone()];
            for algorithm in &algorithms {
                let worst = cell
                    .rows
                    .iter()
                    .filter(|r| r.algorithm == algorithm.name())
                    .map(|r| r.ter)
                    .fold(0.0f64, f64::max);
                cells_out.push(report::sci(worst));
            }
            cells_out.push(format!("{}", cell.shards));
            cells_out
        })
        .collect();
    report::table(
        &[
            "die",
            "corner",
            "baseline",
            "reorder",
            "cluster-then-reorder",
            "shards",
        ],
        &rows,
    );

    report::section("Cross-corner summary");
    let summary: Vec<Vec<String>> = sweep
        .worst
        .iter()
        .map(|w| {
            vec![
                w.algorithm.clone(),
                report::sci(w.ter),
                w.layer.clone(),
                w.condition.clone(),
                w.die.clone(),
            ]
        })
        .collect();
    report::table(
        &["algorithm", "worst TER", "layer", "corner", "die"],
        &summary,
    );
    let (geo, max) = sweep.ter_reduction(&algorithms[2].name(), "baseline");
    println!();
    println!(
        "cluster-then-reorder TER reduction across all {} cells: geo-mean {geo:.1}x (max {max:.1}x)",
        sweep.cells.len()
    );
}
