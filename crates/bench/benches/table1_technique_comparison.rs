//! Table I: qualitative comparison of timing-error-resilience techniques.

use read_bench::report;
use read_core::technique_comparison;

fn main() {
    report::section("Table I: representative timing error-resilient design methods");
    let rows: Vec<Vec<String>> = technique_comparison()
        .into_iter()
        .map(|t| {
            vec![
                t.name.to_string(),
                t.layer.to_string(),
                if t.scalable_with_technology {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
                if t.accuracy_loss { "yes" } else { "no" }.to_string(),
                t.hardware_overhead.to_string(),
                if t.throughput_drop { "yes" } else { "no" }.to_string(),
                t.design_effort.to_string(),
            ]
        })
        .collect();
    report::table(
        &[
            "Method",
            "Layer",
            "Scalable",
            "Accuracy loss",
            "HW overhead",
            "Throughput drop",
            "Design effort",
        ],
        &rows,
    );
}
