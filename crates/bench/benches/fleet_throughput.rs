//! Fleet dispatch throughput: units per second through a `SocketExecutor`
//! driving two in-process workers, with an injected per-message latency
//! shim between driver and fleet — the regime windowed dispatch exists
//! for.
//!
//! Same harness as `kernel_throughput`/`dataflow_throughput`: interleaved
//! A/B samples (minimum of repeated timed runs after warmup) with
//! byte-identical-result checks inside the measured pairs, and
//! `--json <path>` to write the committed `BENCH_<pr>.json`
//! perf-trajectory record.
//!
//! Topology: a `StoreServer` (shared artifact namespace) and two
//! `WorkerServer`s run in-process; every TCP hop — driver→worker and
//! worker→store — goes through a latency relay that delivers each wire
//! line a fixed delay after it was read.  The relay models *latency*, not
//! bandwidth: lines in flight overlap, so a pipelining peer can hide the
//! delay while a lock-step peer pays a full round trip per unit.
//!
//! * `window2_vs_lockstep` / `window8_vs_lockstep` — before =
//!   `SocketExecutor::window(1)` (the pre-windowed lock-step protocol),
//!   after = the same fleet driven with 2 or 8 units in flight per worker.
//!   Workers are warm (the shared store memoizes unit artifacts and each
//!   connection prefetches them in `mget` batches), so the measured cost
//!   is dispatch, which is the point.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use read_core::SortCriterion;
use read_pipeline::{
    vgg16_workloads_prefix, Algorithm, ArtifactStore, CornerSpec, Executor, LayerWorkload, McSpec,
    MemoryStore, PipelineError, ReadPipeline, RemoteStore, SerialExecutor, ServeRequest,
    SocketExecutor, StoreServer, SweepPlan, WorkerConfig, WorkerServer, WorkloadConfig,
};

/// Injected one-way latency per wire line, each hop.  A lock-step driver
/// pays two of these per unit (request out, result back); a windowed
/// driver amortizes them across its in-flight window.
const LINE_DELAY: Duration = Duration::from_millis(6);

/// Times an A/B pair with interleaved samples, returning each side's best
/// observed seconds (see `kernel_throughput` for the rationale).
fn time_ab(runs: usize, mut before: impl FnMut(), mut after: impl FnMut()) -> (f64, f64) {
    before();
    after(); // warmup both sides (and the fleet's shared store)
    let mut best_before = f64::INFINITY;
    let mut best_after = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        before();
        best_before = best_before.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        after();
        best_after = best_after.min(start.elapsed().as_secs_f64());
    }
    (best_before, best_after)
}

/// One A/B measurement over `elems` work units per run.
struct Record {
    kernel: String,
    elems: u64,
    before_s: f64,
    after_s: f64,
}

impl Record {
    fn ns_per_elem(&self, seconds: f64) -> f64 {
        seconds * 1e9 / self.elems as f64
    }

    fn elems_per_sec(&self, seconds: f64) -> f64 {
        self.elems as f64 / seconds
    }

    fn speedup(&self) -> f64 {
        self.before_s / self.after_s
    }

    fn print(&self) {
        println!(
            "fleet {:<44} before {:>10.1} us/unit ({:.3e} units/s)  after {:>10.1} us/unit  speedup {:.2}x",
            self.kernel,
            self.ns_per_elem(self.before_s) / 1e3,
            self.elems_per_sec(self.before_s),
            self.ns_per_elem(self.after_s) / 1e3,
            self.speedup()
        );
    }
}

fn side_json(record: &Record, seconds: f64) -> String {
    format!(
        "{{ \"seconds\": {seconds:.9}, \"ns_per_elem\": {:.4}, \"elems_per_sec\": {:.4e} }}",
        record.ns_per_elem(seconds),
        record.elems_per_sec(seconds)
    )
}

fn to_json(records: &[Record]) -> String {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"elems\": {}, \"before\": {}, \"after\": {}, \"speedup\": {:.3} }}{}\n",
            r.kernel,
            r.elems,
            side_json(r, r.before_s),
            side_json(r, r.after_s),
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One direction of a latency relay: a reader thread stamps each incoming
/// line with its delivery deadline, a writer thread sleeps until the
/// deadline and forwards it.  Splitting read from write is what makes the
/// delay a *latency* — the reader keeps draining while earlier lines are
/// still waiting out their deadlines, so in-flight lines overlap.
fn relay(from: TcpStream, to: TcpStream, delay: Duration) {
    let (tx, rx) = mpsc::channel::<(Instant, String)>();
    thread::spawn(move || {
        let mut reader = BufReader::new(from);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if tx.send((Instant::now() + delay, line)).is_err() {
                        break;
                    }
                }
            }
        }
    });
    thread::spawn(move || {
        let mut to = to;
        for (deadline, line) in rx {
            let now = Instant::now();
            if deadline > now {
                thread::sleep(deadline - now);
            }
            if to
                .write_all(line.as_bytes())
                .and_then(|()| to.flush())
                .is_err()
            {
                break;
            }
        }
        // Propagate EOF so the peer's read loop terminates cleanly.
        let _ = to.shutdown(Shutdown::Write);
    });
}

/// Spawns a per-line latency relay in front of `upstream` and returns the
/// address to dial instead.
fn latency_proxy(upstream: SocketAddr, delay: Duration) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(client) = conn else { break };
            let Ok(server) = TcpStream::connect(upstream) else {
                continue;
            };
            relay(
                client.try_clone().expect("clone client"),
                server.try_clone().expect("clone server"),
                delay,
            );
            relay(server, client, delay);
        }
    });
    addr
}

/// The benched experiment: the first VGG-16 layer only (27-row reduction —
/// units are cheap, so dispatch is the cost being measured, not compute),
/// baseline vs READ, three corners, typical, and a finely sharded
/// Monte-Carlo budget to produce a deep queue of small units.
fn fleet_request() -> ServeRequest {
    let mut request = ServeRequest::sweep("fleet-bench");
    request.layers = 1;
    request.pixels = 1;
    request.corners = vec![
        CornerSpec::ideal(),
        CornerSpec {
            aging_years: 0.0,
            vt_fluctuation: 0.05,
        },
        CornerSpec::aging_vt(10.0, 0.05),
    ];
    request.typical = true;
    request.mc = Some(McSpec {
        trials: 64,
        seed: 7,
        trials_per_shard: 2,
    });
    request
}

/// The driver-side pipeline for [`fleet_request`] (same plan ⇒ same unit
/// encodings ⇒ same store keys the workers use).
fn fleet_pipeline(
    request: &ServeRequest,
    store: Arc<dyn ArtifactStore>,
    executor: impl Executor + 'static,
) -> Result<(ReadPipeline, Vec<LayerWorkload>), PipelineError> {
    let config = WorkloadConfig {
        pixels_per_layer: request.pixels,
        seed: request.workload_seed,
        ..WorkloadConfig::default()
    };
    let workloads = vgg16_workloads_prefix(&config, request.layers);
    let mut plan = SweepPlan::new().conditions(request.corners.iter().map(CornerSpec::resolve));
    if request.typical {
        plan = plan.typical();
    }
    plan = plan.dies(request.dies.iter().copied());
    if let Some(mc) = &request.mc {
        plan = plan.monte_carlo(mc.trials, mc.seed);
        if mc.trials_per_shard > 0 {
            plan = plan.trials_per_shard(mc.trials_per_shard);
        }
    }
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
        .sweep(plan)
        .store_arc(store)
        .executor(executor)
        .build()?;
    Ok((pipeline, workloads))
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json_path = Some(argv.next().expect("--json requires a path")),
            "--bench" => {} // forwarded by `cargo bench`
            other => eprintln!("ignoring unknown argument: {other}"),
        }
    }

    let request = fleet_request();

    // The serial reference: same experiment, in-process, private store —
    // every fleet run below must reproduce these exact bytes.
    let (serial, workloads) =
        fleet_pipeline(&request, Arc::new(MemoryStore::new()), SerialExecutor)
            .expect("serial pipeline");
    let units = serial
        .plan_sweep(&request.network, &workloads)
        .expect("plan")
        .len();
    let reference = serial
        .run_sweep(&request.network, &workloads)
        .expect("serial sweep")
        .to_json();
    println!(
        "fleet bench: {units} units, {} byte reference report, {:?} per-line injected latency\n",
        reference.len(),
        LINE_DELAY
    );

    // The fleet: one store daemon and two workers in-process, every hop
    // behind a latency relay.
    let store = StoreServer::spawn("127.0.0.1:0", Arc::new(MemoryStore::new()) as _)
        .expect("spawn store daemon");
    let store_proxy = latency_proxy(store.addr(), LINE_DELAY);
    let worker = |_: usize| {
        let config = WorkerConfig {
            store: Some(Arc::new(RemoteStore::new(store_proxy.to_string())) as _),
            die_after_units: None,
        };
        WorkerServer::spawn("127.0.0.1:0", config).expect("spawn worker")
    };
    let workers = [worker(0), worker(1)];
    let proxied: Vec<String> = workers
        .iter()
        .map(|w| latency_proxy(w.addr(), LINE_DELAY).to_string())
        .collect();

    let run_fleet = |window: usize| {
        let executor = SocketExecutor::new(request.encode(), proxied.iter().cloned())
            .window(window)
            .liveness_timeout(Duration::from_secs(60));
        let (fleet, workloads) = fleet_pipeline(&request, Arc::new(MemoryStore::new()), executor)
            .expect("fleet pipeline");
        let json = fleet
            .run_sweep(&request.network, &workloads)
            .expect("fleet sweep")
            .to_json();
        assert_eq!(json, reference, "fleet report must match the serial bytes");
    };

    let mut records = Vec::new();
    for (window, label) in [(2usize, "window2"), (8, "window8")] {
        let (before, after) = time_ab(5, || run_fleet(1), || run_fleet(window));
        records.push(Record {
            kernel: format!("fleet/{label}_vs_lockstep_{units}units_2workers"),
            elems: units as u64,
            before_s: before,
            after_s: after,
        });
    }

    // Drain the fleet: workers first (they hold store-client connections),
    // then the store daemon.
    for w in workers {
        WorkerServer::shutdown_at(&w.addr().to_string()).expect("worker shutdown");
        w.join().expect("worker drained");
    }
    store.client().shutdown_daemon().expect("store shutdown");
    store.join().expect("store drained");

    for r in &records {
        r.print();
    }
    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&records)).expect("writable --json path");
        println!("wrote fleet records to {path}");
    }
}
