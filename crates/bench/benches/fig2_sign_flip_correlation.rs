//! Fig. 2: the sign-flip rate of the partial sum and the timing error rate
//! are strongly correlated.
//!
//! The paper collects (sign-flip rate, TER) points from different MAC units
//! running different convolution layers with different dataflows.  This
//! bench sweeps VGG-16 and ResNet-18 layers, both dataflows, and both the
//! baseline and reordered schedules to span a wide range of sign-flip
//! rates, then reports the Pearson correlation of log(SFR) vs log(TER).

use accel_sim::{ArrayConfig, Dataflow};
use read_bench::experiments::Algorithm;
use read_bench::report;
use read_bench::workloads::{resnet18_workloads, vgg16_workloads, WorkloadConfig};
use read_core::SortCriterion;
use read_pipeline::{DelayErrorModel, ReadPipeline};
use timing::math::pearson_correlation;
use timing::{DelayModel, OperatingCondition};

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 2,
        ..WorkloadConfig::default()
    };
    let array = ArrayConfig::paper_default();
    let delay = DelayModel::nangate15_like();
    let condition = OperatingCondition::aging_vt(10.0, 0.05);

    let mut workloads = vgg16_workloads(&config);
    workloads.extend(resnet18_workloads(&config).into_iter().step_by(2));

    let mut points: Vec<(String, f64, f64)> = Vec::new();
    for dataflow in [Dataflow::OutputStationary, Dataflow::WeightStationary] {
        let pipeline = ReadPipeline::builder()
            .array(array)
            .dataflow(dataflow)
            .error_model(DelayErrorModel::new(delay))
            .condition(condition)
            .source(Algorithm::Baseline)
            .source(Algorithm::Reorder(SortCriterion::SignFirst))
            .parallel()
            .build()
            .expect("valid pipeline");
        let net = pipeline
            .run_ter("fig2", &workloads)
            .expect("workloads simulate");
        for row in &net.rows {
            if row.sign_flip_rate > 0.0 && row.ter > 0.0 {
                points.push((
                    format!("{} / {} / {}", row.layer, dataflow, row.algorithm),
                    row.sign_flip_rate,
                    row.ter,
                ));
            }
        }
    }

    report::section("Fig. 2: sign-flip rate vs timing error rate (aging 10y + 5% VT)");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(name, sfr, ter)| vec![name.clone(), report::sci(*sfr), report::sci(*ter)])
        .collect();
    report::table(
        &["layer / dataflow / schedule", "sign-flip rate", "TER"],
        &rows,
    );

    let xs: Vec<f64> = points.iter().map(|(_, s, _)| s.ln()).collect();
    let ys: Vec<f64> = points.iter().map(|(_, _, t)| t.ln()).collect();
    let r = pearson_correlation(&xs, &ys).unwrap_or(0.0);
    println!();
    println!(
        "Pearson correlation of log(sign-flip rate) vs log(TER): r = {r:.3} over {} points",
        points.len()
    );
    println!("(paper: strong positive correlation — Fig. 2 scatter hugs a line)");
}
