//! Fig. 5: where the non-negative weights end up after reordering, and how
//! the output-channel clustering converges.
//!
//! (a) the initial weight matrix has a uniform sign distribution over
//! positions; (b) `mag_first` and (c) `sign_first` concentrate the
//! non-negative weights at the front; (d) the clustering further increases
//! the non-negative ratio in the top 25 % / 50 % of the matrix and
//! converges within a few tens of iterations.

use read_bench::report;
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_core::{
    nonneg_quantile_profile, nonneg_ratio_in_top, sort_input_channels, BalancedKMeans,
    DistanceMetric, SortCriterion,
};

fn main() {
    let config = WorkloadConfig::default();
    // A middle VGG-16 layer (256 -> 256 channels), as in the paper's example.
    let workload = vgg16_workloads(&config)
        .into_iter()
        .find(|w| w.name == "conv3_6")
        .expect("vgg16 plan contains conv3_6");
    let weights = &workload.weights;
    let all_cols: Vec<usize> = (0..weights.cols()).collect();
    let natural: Vec<usize> = (0..weights.rows()).collect();
    let buckets = 10;

    let profile = |order: &[usize]| {
        nonneg_quantile_profile(weights, &all_cols, order, buckets).expect("valid order")
    };

    let initial = profile(&natural);
    let mag = profile(
        &sort_input_channels(weights, &all_cols, SortCriterion::MagFirst).expect("sortable"),
    );
    let sign = profile(
        &sort_input_channels(weights, &all_cols, SortCriterion::SignFirst).expect("sortable"),
    );

    report::section(&format!(
        "Fig. 5(a-c): non-negative weight ratio by position decile ({} layer {})",
        "VGG-16", workload.name
    ));
    let rows: Vec<Vec<String>> = (0..buckets)
        .map(|b| {
            vec![
                format!("{}-{}%", b * 10, (b + 1) * 10),
                report::pct(initial[b]),
                report::pct(mag[b]),
                report::pct(sign[b]),
            ]
        })
        .collect();
    report::table(
        &["position decile", "initial", "mag_first", "sign_first"],
        &rows,
    );

    // Fig. 5(d): clustering convergence — non-negative ratio in the top 25%
    // and 50% of each cluster's reordered sub-matrix, per iteration.
    let cluster_size = 4;
    let result = BalancedKMeans::new(cluster_size, DistanceMetric::SignManhattan)
        .with_max_iterations(30)
        .run(weights)
        .expect("clusterable");

    report::section("Fig. 5(d): clustering convergence (ratio of non-negative weights)");
    let mut rows = Vec::new();
    for (iter, clusters) in result.history.iter().enumerate() {
        let mut top25 = 0.0;
        let mut top50 = 0.0;
        for cluster in clusters {
            let order =
                sort_input_channels(weights, cluster, SortCriterion::SignFirst).expect("sortable");
            top25 += nonneg_ratio_in_top(weights, cluster, &order, 0.25).expect("valid");
            top50 += nonneg_ratio_in_top(weights, cluster, &order, 0.50).expect("valid");
        }
        let n = clusters.len() as f64;
        rows.push(vec![
            format!("{}", iter + 1),
            report::pct(top25 / n),
            report::pct(top50 / n),
            format!("{:.0}", result.cost_history[iter]),
        ]);
    }
    report::table(
        &["iteration", "top 25%", "top 50%", "cluster SD cost"],
        &rows,
    );
    println!();
    println!(
        "converged after {} iterations (paper: converges well within ~30 iterations)",
        result.iterations
    );
}
