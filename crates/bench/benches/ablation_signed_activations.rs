//! Ablation: the non-negative-activation assumption.
//!
//! READ's optimality argument relies on post-ReLU (non-negative)
//! activations: the sign of every product is then the sign of its weight.
//! This bench re-runs the layer experiment with signed activations (as after
//! a layer without ReLU, or with symmetric quantization of raw inputs) to
//! show how much of the benefit survives.

use accel_sim::{ArrayConfig, Matrix};
use read_bench::experiments::{figure_pipeline, Algorithm};
use read_bench::report;
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_core::SortCriterion;
use timing::{DelayModel, OperatingCondition};

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 4,
        ..WorkloadConfig::default()
    };
    let array = ArrayConfig::paper_default();
    let delay = DelayModel::nangate15_like();
    let condition = OperatingCondition::aging_vt(10.0, 0.05);
    let read = Algorithm::ClusterThenReorder(SortCriterion::SignFirst);
    let pipeline = figure_pipeline(&[Algorithm::Baseline, read], &array, &delay, &[condition]);

    report::section("Ablation: ReLU (non-negative) vs signed activations (aging 10y + 5% VT)");
    let mut rows = Vec::new();
    for (label, make_signed) in [("non-negative (post-ReLU)", false), ("signed", true)] {
        let mut log_reduction = 0.0;
        let mut n = 0usize;
        for (i, workload) in vgg16_workloads(&config).iter().enumerate() {
            let mut workload = workload.clone();
            if make_signed {
                // Flip the sign of half the activation entries
                // deterministically to emulate a signed input distribution
                // with the same magnitudes.
                workload.activations = Matrix::from_fn(
                    workload.activations.rows(),
                    workload.activations.cols(),
                    |r, c| {
                        let v = workload.activations[(r, c)];
                        if (r * 31 + c * 17 + i) % 2 == 0 {
                            v
                        } else {
                            v.saturating_neg()
                        }
                    },
                );
            }
            let base = pipeline
                .layer_ter(&workload, &Algorithm::Baseline, &condition)
                .expect("simulates");
            let opt = pipeline
                .layer_ter(&workload, &read, &condition)
                .expect("simulates");
            if base > 0.0 && opt > 0.0 {
                log_reduction += (base / opt).ln();
                n += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}x", (log_reduction / n.max(1) as f64).exp()),
        ]);
    }
    report::table(
        &[
            "activation distribution",
            "geo-mean TER reduction (READ vs baseline)",
        ],
        &rows,
    );
    println!();
    println!("(expected: the reduction shrinks substantially with signed activations — the");
    println!(" weight-sign heuristic no longer controls the product signs)");
}
