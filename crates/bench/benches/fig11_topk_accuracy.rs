//! Fig. 11: top-3 accuracy of VGG-16 on a CIFAR-100-style task and
//! ResNet-34 on an ImageNet-style task under the six PVTA corners.
//!
//! As in the paper, errors are injected only into the vulnerable early
//! layers (the ones closest to the input) to keep the large-network
//! simulation tractable; the class count and input resolution are reduced
//! per the substitutions documented in DESIGN.md.

use accel_sim::ArrayConfig;
use qnn::fit::fit_classifier_head;
use qnn::models;
use qnn::SyntheticDatasetBuilder;
use read_bench::experiments::{accuracy_sweep, Algorithm};
use read_bench::report;
use read_bench::workloads::{resnet34_workloads, vgg16_workloads, WorkloadConfig};
use timing::{paper_conditions, DelayModel};

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 2,
        ..WorkloadConfig::default()
    };
    let array = ArrayConfig::paper_default();
    let delay = DelayModel::nangate15_like();
    let conditions = paper_conditions();
    let algorithms = Algorithm::paper_set();

    // Only the first (most vulnerable) layers receive injected errors.
    let vulnerable = 6usize;

    let cifar100_like = SyntheticDatasetBuilder::new(20, [3, 32, 32])
        .samples_per_class(2)
        .noise(30.0)
        .seed(0xC1F1)
        .build()
        .expect("dataset builds");
    let imagenet_like = SyntheticDatasetBuilder::new(20, [3, 48, 48])
        .samples_per_class(2)
        .noise(25.0)
        .seed(0x13A6)
        .build()
        .expect("dataset builds");

    let runs: Vec<(
        &str,
        qnn::Model,
        Vec<read_bench::LayerWorkload>,
        qnn::Dataset,
    )> = vec![
        (
            "VGG-16 (CIFAR-100-style, 20 classes)",
            models::vgg16_cifar_scaled(8, 20, 51).expect("model builds"),
            vgg16_workloads(&config)
                .into_iter()
                .take(vulnerable)
                .collect(),
            cifar100_like,
        ),
        (
            "ResNet-34 (ImageNet-style, 20 classes)",
            models::resnet34_imagenet_scaled(16, 20, 52).expect("model builds"),
            resnet34_workloads(&config)
                .into_iter()
                .take(vulnerable)
                .collect(),
            imagenet_like,
        ),
    ];

    for (name, mut model, workloads, dataset) in runs {
        let clean = fit_classifier_head(&mut model, &dataset).expect("head fits");
        let points = accuracy_sweep(
            &model,
            &dataset,
            &workloads,
            &algorithms,
            &conditions,
            &array,
            &delay,
            3,
            3,
        )
        .expect("sweep runs");

        report::section(&format!(
            "Fig. 11: top-3 accuracy of {name} under PVTA corners (clean top-1 {})",
            report::pct(clean)
        ));
        let mut rows = Vec::new();
        for condition in &conditions {
            let mut cells = vec![condition.name.to_string()];
            for algorithm in &algorithms {
                let p = points
                    .iter()
                    .find(|p| p.condition == condition.name && p.algorithm == algorithm.name())
                    .expect("point exists");
                cells.push(report::pct(p.topk));
            }
            rows.push(cells);
        }
        report::table(
            &["corner", "baseline", "reorder", "cluster-then-reorder"],
            &rows,
        );
        println!();
        println!(
            "(paper: same trend as Fig. 10 — READ withstands a much wider range of fluctuations)"
        );
    }
}
