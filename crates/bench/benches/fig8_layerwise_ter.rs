//! Fig. 8: layer-wise timing error rate of VGG-16 and ResNet-18 under
//! baseline, reorder and cluster-then-reorder schedules, at the
//! 10-year-aging + 5 %-VT corner — plus the headline average and maximum
//! TER-reduction factors (paper: 4.9x for reorder, 7.8x average and up to
//! 37.9x for cluster-then-reorder).

use accel_sim::ArrayConfig;
use read_bench::experiments::{
    figure_pipeline_with_model, layerwise_ter, layerwise_ter_with, ter_reduction, Algorithm,
};
use read_bench::report;
use read_bench::workloads::{resnet18_workloads, vgg16_workloads, WorkloadConfig};
use read_pipeline::MonteCarloErrorModel;
use timing::{DelayModel, OperatingCondition};

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 4,
        ..WorkloadConfig::default()
    };
    let array = ArrayConfig::paper_default();
    let delay = DelayModel::nangate15_like();
    let condition = OperatingCondition::aging_vt(10.0, 0.05);
    let algorithms = Algorithm::paper_set();

    for (network, workloads) in [
        ("VGG-16", vgg16_workloads(&config)),
        ("ResNet-18", resnet18_workloads(&config)),
    ] {
        let rows = layerwise_ter(&workloads, &algorithms, &array, &delay, &condition);
        report::section(&format!(
            "Fig. 8: layer-wise TER, {network} (aging 10y + 5% VT, 16x4 output-stationary array)"
        ));
        let mut printed = Vec::new();
        for workload in &workloads {
            let mut cells = vec![workload.name.clone()];
            for algorithm in &algorithms {
                let row = rows
                    .iter()
                    .find(|r| r.layer == workload.name && r.algorithm == algorithm.name())
                    .expect("row exists");
                cells.push(report::sci(row.ter));
            }
            // Per-layer reduction of the best algorithm.
            let base = rows
                .iter()
                .find(|r| r.layer == workload.name && r.algorithm == "baseline")
                .expect("baseline row");
            let best = rows
                .iter()
                .filter(|r| r.layer == workload.name && r.algorithm != "baseline")
                .map(|r| r.ter)
                .fold(f64::INFINITY, f64::min);
            cells.push(if best > 0.0 {
                format!("{:.1}x", base.ter / best)
            } else {
                "inf".to_string()
            });
            printed.push(cells);
        }
        report::table(
            &[
                "layer",
                "baseline",
                "reorder",
                "cluster-then-reorder",
                "best reduction",
            ],
            &printed,
        );

        let (reorder_avg, reorder_max) = ter_reduction(&rows, &algorithms[1].name());
        let (cluster_avg, cluster_max) = ter_reduction(&rows, &algorithms[2].name());
        println!();
        println!(
            "{network}: reorder reduction avg {reorder_avg:.1}x (max {reorder_max:.1}x); \
             cluster-then-reorder reduction avg {cluster_avg:.1}x (max {cluster_max:.1}x)"
        );
        println!(
            "(paper averages across both networks: reorder 4.9x, cluster-then-reorder 7.8x, max 37.9x)"
        );
    }

    // Monte-Carlo cross-check: the sampled TER (mean ± stddev over seeded
    // trials) brackets the analytic estimate on a representative layer —
    // the same schedule/simulation path, only the error-model stage swaps.
    let workloads: Vec<_> = vgg16_workloads(&config).into_iter().take(3).collect();
    let analytic = layerwise_ter(&workloads, &[algorithms[0]], &array, &delay, &condition);
    let mc_pipeline = figure_pipeline_with_model(
        &[algorithms[0]],
        &array,
        MonteCarloErrorModel::with_delay(delay, 32, 0xF168),
        &[condition],
    );
    let sampled = layerwise_ter_with(&mc_pipeline, &workloads);
    report::section("Monte-Carlo validation of the analytic TER (baseline schedule, 32 trials)");
    let rows: Vec<Vec<String>> = workloads
        .iter()
        .zip(analytic.iter().zip(&sampled))
        .map(|(w, (a, s))| {
            vec![
                w.name.clone(),
                report::sci(a.ter),
                report::sci(s.ter),
                report::sci(s.ter_stddev.unwrap_or(0.0)),
            ]
        })
        .collect();
    report::table(
        &["layer", "analytic TER", "MC mean TER", "MC stddev"],
        &rows,
    );
}
