//! Ablation: which part of the sorting criterion matters?
//!
//! Compares the paper's `sign_first` and `mag_first` criteria against a
//! magnitude-only sort (no sign information) and a random-but-fixed
//! permutation, to separate "any deterministic reorder" from the sign-aware
//! orderings the paper proposes.

use accel_sim::ArrayConfig;
use read_bench::experiments::{layer_report, Algorithm};
use read_bench::report;
use read_bench::workloads::{vgg16_workloads, WorkloadConfig};
use read_core::SortCriterion;
use timing::{DelayModel, OperatingCondition};

fn main() {
    let config = WorkloadConfig {
        pixels_per_layer: 4,
        ..WorkloadConfig::default()
    };
    let array = ArrayConfig::paper_default();
    let delay = DelayModel::nangate15_like();
    let condition = OperatingCondition::aging_vt(10.0, 0.05);

    let criteria = [
        ("baseline (no reorder)", Algorithm::Baseline),
        ("sign_first", Algorithm::Reorder(SortCriterion::SignFirst)),
        ("mag_first", Algorithm::Reorder(SortCriterion::MagFirst)),
        (
            "magnitude only",
            Algorithm::Reorder(SortCriterion::MagnitudeOnly),
        ),
        (
            "random permutation",
            Algorithm::Reorder(SortCriterion::Random { seed: 7 }),
        ),
    ];

    report::section(
        "Ablation: sorting criterion (aging 10y + 5% VT, geometric mean over VGG-16 layers)",
    );
    let workloads = vgg16_workloads(&config);
    let mut rows = Vec::new();
    for (label, algorithm) in criteria {
        let mut log_ter = 0.0;
        let mut log_sfr = 0.0;
        let mut n = 0usize;
        for workload in &workloads {
            let hist = layer_report(workload, algorithm, &array);
            let ter = hist.ter(&delay, &condition);
            if ter > 0.0 && hist.sign_flip_rate() > 0.0 {
                log_ter += ter.ln();
                log_sfr += hist.sign_flip_rate().ln();
                n += 1;
            }
        }
        let gm_ter = (log_ter / n.max(1) as f64).exp();
        let gm_sfr = (log_sfr / n.max(1) as f64).exp();
        rows.push(vec![
            label.to_string(),
            report::sci(gm_sfr),
            report::sci(gm_ter),
        ]);
    }
    report::table(
        &["criterion", "geo-mean sign-flip rate", "geo-mean TER"],
        &rows,
    );
    println!();
    println!("(expected: sign_first < mag_first < magnitude-only ~ random ~ baseline)");
}
