//! Parametric delay model of the MAC datapath.
//!
//! The model abstracts the synthesized 8x8-multiplier + 24-bit-accumulator
//! datapath of the paper into two delay contributions:
//!
//! * a fixed **multiplier stage** delay (the partial-product reduction tree
//!   is exercised by every non-idle cycle and its depth barely depends on
//!   the operands), and
//! * an **accumulator carry chain** whose exercised length depends on the
//!   operands of the cycle: the deeper the carry/borrow propagation and the
//!   higher the most-significant toggled bit, the longer the triggered path.
//!
//! Static timing analysis (STA) sees the full-width worst case; dynamic
//! timing analysis sees only the path actually triggered by each cycle.
//! The gap between the two — STA input-vector pessimism plus the margin a
//! signoff flow adds for on-chip variation — is captured by
//! [`DelayModel::sta_margin`]: at nominal conditions no dynamically
//! triggered path reaches the clock edge, exactly as in the paper, and PVTA
//! derating erodes the margin until the deepest patterns (partial-sum sign
//! flips) start to fail first.

use accel_sim::{MacCycle, ACC_BITS};

use crate::math::normal_tail;
use crate::pvta::OperatingCondition;

/// Delay model of one MAC processing element.
///
/// All delays are expressed in normalized units where the nominal worst-case
/// datapath delay (multiplier + full-width carry) is `1.0`; the absolute
/// scale cancels out of every error-probability computation.
///
/// # Example
///
/// ```
/// use timing::{DelayModel, OperatingCondition};
///
/// let model = DelayModel::nangate15_like();
/// // At the Ideal corner the deepest possible path still meets timing with
/// // overwhelming probability.
/// let p = model.error_probability_for_depth(timing::delay::MAX_DEPTH, &OperatingCondition::ideal(), 0.0);
/// assert!(p < 1e-6);
/// // A combined aging + 5% VT corner makes the same path marginal.
/// let p = model.error_probability_for_depth(
///     timing::delay::MAX_DEPTH,
///     &OperatingCondition::aging_vt(10.0, 0.05),
///     0.0,
/// );
/// assert!(p > 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// Delay of the multiplier stage (normalized units).
    pub multiplier_delay: f64,
    /// Incremental accumulator delay per carry-chain bit (normalized units).
    pub carry_delay_per_bit: f64,
    /// STA pessimism margin: the signoff clock period exceeds the nominal
    /// worst dynamically-triggered path by this fraction.
    pub sta_margin: f64,
    /// Standard deviation of the per-cycle random delay component
    /// (supply/temperature ripple, crosstalk), as a fraction of the
    /// triggered path delay.
    pub sigma_cycle: f64,
    /// Standard deviation of the per-PE process variation, as a fraction of
    /// the triggered path delay.
    pub sigma_process: f64,
}

/// Maximum triggered depth: the full accumulator width.
pub const MAX_DEPTH: u32 = ACC_BITS;

impl DelayModel {
    /// Default model calibrated against the paper's setup (Nangate 15 nm
    /// MAC, commercial 16/14 nm FinFET VT corners): the Ideal corner is
    /// error-free, and the combined 10-year-aging + 5 %-VT corner pushes the
    /// error probability of sign-flip cycles to the 10⁻³–10⁻² range so that
    /// layer TERs land at the 10⁻⁵–10⁻⁴ magnitudes reported in Fig. 8.
    pub fn nangate15_like() -> Self {
        DelayModel {
            multiplier_delay: 0.35,
            carry_delay_per_bit: 0.65 / f64::from(ACC_BITS),
            sta_margin: 0.37,
            sigma_cycle: 0.05,
            sigma_process: 0.05,
        }
    }

    /// Nominal delay of the deepest dynamically triggerable path
    /// (multiplier + full-width carry chain).
    pub fn nominal_critical_path(&self) -> f64 {
        self.path_delay(MAX_DEPTH)
    }

    /// Clock period chosen by static timing analysis at the nominal corner.
    pub fn clock_period(&self) -> f64 {
        self.nominal_critical_path() * (1.0 + self.sta_margin)
    }

    /// Nominal delay of a path with the given triggered depth.
    pub fn path_delay(&self, depth: u32) -> f64 {
        self.multiplier_delay + f64::from(depth.min(MAX_DEPTH)) * self.carry_delay_per_bit
    }

    /// Structural depth triggered by one MAC cycle: the longest carry chain
    /// or, if higher, the most significant toggled accumulator bit (whose
    /// settling requires the carry network to resolve up to that position).
    ///
    /// Delegates to [`MacCycle::triggered_depth`], the single definition the
    /// scalar path and the word-parallel kernels share.
    pub fn triggered_depth(cycle: &MacCycle) -> u32 {
        cycle.triggered_depth()
    }

    /// Combined standard deviation of the random delay components.
    pub fn sigma_total(&self) -> f64 {
        (self.sigma_cycle.powi(2) + self.sigma_process.powi(2)).sqrt()
    }

    /// Probability that a path of the given triggered depth violates timing
    /// under `condition`, for a PE with the given process offset
    /// (`process_offset` is a fractional delay offset, usually a sample of
    /// `N(0, sigma_process)`; pass `0.0` for a typical PE and the model
    /// folds the process sigma into the random component instead).
    pub fn error_probability_for_depth(
        &self,
        depth: u32,
        condition: &OperatingCondition,
        process_offset: f64,
    ) -> f64 {
        if depth == 0 {
            return 0.0;
        }
        let derate = condition.delay_derate() * (1.0 + process_offset);
        let path = self.path_delay(depth) * derate;
        let sigma = if process_offset == 0.0 {
            self.sigma_total() * path
        } else {
            self.sigma_cycle * path
        };
        if sigma <= 0.0 {
            return if path > self.clock_period() { 1.0 } else { 0.0 };
        }
        let slack = self.clock_period() - path;
        normal_tail(slack / sigma)
    }

    /// Probability that the given MAC cycle violates timing under
    /// `condition`.
    ///
    /// Idle cycles (zero product, no switching) never fail.
    pub fn error_probability(
        &self,
        cycle: &MacCycle,
        condition: &OperatingCondition,
        process_offset: f64,
    ) -> f64 {
        if cycle.is_idle() {
            return 0.0;
        }
        self.error_probability_for_depth(Self::triggered_depth(cycle), condition, process_offset)
    }

    /// The smallest triggered depth whose *deterministic* path delay (no
    /// random component) already exceeds the clock period under `condition`,
    /// or `None` if even the deepest path meets timing deterministically.
    ///
    /// Useful for reasoning about which input patterns are critical at a
    /// given corner.
    pub fn critical_depth(&self, condition: &OperatingCondition) -> Option<u32> {
        let derate = condition.delay_derate();
        (1..=MAX_DEPTH).find(|&d| self.path_delay(d) * derate > self.clock_period())
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::nangate15_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::MacUnit;

    #[test]
    fn clock_period_exceeds_nominal_critical_path() {
        let m = DelayModel::nangate15_like();
        assert!(m.clock_period() > m.nominal_critical_path());
        assert!((m.nominal_critical_path() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn path_delay_monotone_in_depth() {
        let m = DelayModel::nangate15_like();
        let mut prev = 0.0;
        for d in 0..=MAX_DEPTH {
            let p = m.path_delay(d);
            assert!(p > prev);
            prev = p;
        }
        // Depth is clamped to the accumulator width.
        assert_eq!(m.path_delay(100), m.path_delay(MAX_DEPTH));
    }

    #[test]
    fn error_probability_monotone_in_stress() {
        let m = DelayModel::nangate15_like();
        let corners = crate::pvta::paper_conditions();
        let probs: Vec<f64> = corners
            .iter()
            .map(|c| m.error_probability_for_depth(MAX_DEPTH, c, 0.0))
            .collect();
        // Ideal is the most benign corner and the combined aging + 5% VT
        // corner the most stressed; combined corners dominate their
        // VT-only and aging-only components.
        for p in &probs[1..] {
            assert!(*p > probs[0], "probabilities {probs:?}");
        }
        assert!(probs[4] > probs[1] && probs[4] > probs[3]);
        assert!(probs[5] > probs[2] && probs[5] > probs[4]);
        assert!(probs[0] < 1e-6, "Ideal must be essentially error-free");
        assert!(probs[5] > 1e-4, "worst corner must be marginal");
        assert!(probs[5] < 0.5, "worst corner must not fail every cycle");
    }

    #[test]
    fn error_probability_monotone_in_depth() {
        let m = DelayModel::nangate15_like();
        let c = OperatingCondition::aging_vt(10.0, 0.05);
        let shallow = m.error_probability_for_depth(8, &c, 0.0);
        let deep = m.error_probability_for_depth(MAX_DEPTH, &c, 0.0);
        assert!(deep > shallow * 10.0);
        assert_eq!(m.error_probability_for_depth(0, &c, 0.0), 0.0);
    }

    #[test]
    fn process_offset_shifts_probability() {
        let m = DelayModel::nangate15_like();
        let c = OperatingCondition::aging_vt(10.0, 0.05);
        let slow = m.error_probability_for_depth(MAX_DEPTH, &c, 0.05);
        let fast = m.error_probability_for_depth(MAX_DEPTH, &c, -0.05);
        let typical = m.error_probability_for_depth(MAX_DEPTH, &c, 0.0);
        assert!(slow > typical * 0.9);
        assert!(fast < typical);
    }

    #[test]
    fn idle_cycles_never_fail() {
        let m = DelayModel::nangate15_like();
        let mut mac = MacUnit::new();
        mac.load(100);
        let idle = mac.mac(0, 42);
        assert_eq!(
            m.error_probability(&idle, &OperatingCondition::aging_vt(10.0, 0.05), 0.0),
            0.0
        );
    }

    #[test]
    fn sign_flip_cycles_are_the_critical_pattern() {
        let m = DelayModel::nangate15_like();
        let c = OperatingCondition::aging_vt(10.0, 0.05);
        let mut mac = MacUnit::new();
        mac.load(2);
        let flip = mac.mac(-2, 3); // 2 - 6 = -4: sign flip
        let mut mac2 = MacUnit::new();
        mac2.load(1000);
        let benign = mac2.mac(2, 3); // small increment, no flip
        assert!(
            m.error_probability(&flip, &c, 0.0) > 100.0 * m.error_probability(&benign, &c, 0.0)
        );
    }

    #[test]
    fn critical_depth_appears_only_under_stress() {
        let m = DelayModel::nangate15_like();
        assert_eq!(m.critical_depth(&OperatingCondition::ideal()), None);
        // With a large enough derate some depth becomes deterministically
        // critical.
        let extreme = OperatingCondition::aging_vt(10.0, 0.20);
        if let Some(d) = m.critical_depth(&extreme) {
            assert!(d > 0 && d <= MAX_DEPTH);
        }
    }

    #[test]
    fn zero_sigma_becomes_deterministic() {
        let mut m = DelayModel::nangate15_like();
        m.sigma_cycle = 0.0;
        m.sigma_process = 0.0;
        assert_eq!(
            m.error_probability_for_depth(MAX_DEPTH, &OperatingCondition::ideal(), 0.0),
            0.0
        );
        let extreme = OperatingCondition::aging_vt(10.0, 0.25);
        assert_eq!(m.error_probability_for_depth(MAX_DEPTH, &extreme, 0.0), 1.0);
    }
}
