//! Bit-flip fault models for accumulator words.
//!
//! The paper evaluates accuracy by flipping bits of the output activations
//! (before the activation function) at the BER computed from the layer TER.
//! Timing errors overwhelmingly corrupt the high-order bits of the
//! accumulator — the failing paths end at the most significant sum bits — so
//! the default fault model biases flips toward the top of the 24-bit word.

use accel_sim::ACC_BITS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which accumulator bits a timing error may corrupt.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum BitFlipModel {
    /// Always flip the most significant (sign) bit of the accumulator —
    /// the worst case the paper highlights.
    MostSignificant,
    /// Flip a bit chosen uniformly from the top `n` bits of the accumulator.
    UniformTop {
        /// Number of high-order bit positions eligible for flipping.
        n: u32,
    },
    /// Flip a bit chosen uniformly from the whole accumulator width.
    UniformAll,
}

impl Default for BitFlipModel {
    fn default() -> Self {
        // Timing errors land in the upper carry-chain bits; the top 8 bits
        // of the 24-bit accumulator is the default corruption window.
        BitFlipModel::UniformTop { n: 8 }
    }
}

impl BitFlipModel {
    /// Chooses the bit position to flip for one error event.
    fn sample_bit(&self, rng: &mut StdRng) -> u32 {
        match self {
            BitFlipModel::MostSignificant => ACC_BITS - 1,
            BitFlipModel::UniformTop { n } => {
                let n = (*n).clamp(1, ACC_BITS);
                rng.gen_range(ACC_BITS - n..ACC_BITS)
            }
            BitFlipModel::UniformAll => rng.gen_range(0..ACC_BITS),
        }
    }
}

/// Injects timing-error bit flips into accumulator-precision values at a
/// given bit error rate.
///
/// # Example
///
/// ```
/// use timing::{BitFlipModel, FaultInjector};
///
/// let mut injector = FaultInjector::new(1.0, BitFlipModel::MostSignificant, 42);
/// let corrupted = injector.corrupt(100);
/// assert_ne!(corrupted, 100);
/// let mut clean = FaultInjector::new(0.0, BitFlipModel::MostSignificant, 42);
/// assert_eq!(clean.corrupt(100), 100);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    ber: f64,
    model: BitFlipModel,
    rng: StdRng,
    injected: u64,
    examined: u64,
}

impl FaultInjector {
    /// Creates an injector that corrupts each value independently with
    /// probability `ber`.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not a finite value in `[0, 1]`.
    pub fn new(ber: f64, model: BitFlipModel, seed: u64) -> Self {
        assert!(
            ber.is_finite() && (0.0..=1.0).contains(&ber),
            "BER must be in [0, 1], got {ber}"
        );
        FaultInjector {
            ber,
            model,
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
            examined: 0,
        }
    }

    /// The configured bit error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// Number of values corrupted so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of values examined so far.
    pub fn examined(&self) -> u64 {
        self.examined
    }

    /// Possibly corrupts one accumulator value, returning the (possibly
    /// unchanged) result.  The value is interpreted as a 24-bit word: flips
    /// are applied within the accumulator width and the result sign-extended
    /// back to `i32`.
    pub fn corrupt(&mut self, value: i32) -> i32 {
        self.examined += 1;
        if self.ber <= 0.0 || self.rng.gen::<f64>() >= self.ber {
            return value;
        }
        self.injected += 1;
        let bit = self.model.sample_bit(&mut self.rng);
        let mask: u32 = (1 << ACC_BITS) - 1;
        let raw = (value as u32 ^ (1 << bit)) & mask;
        // Sign-extend the 24-bit word back to i32.
        let shift = 32 - ACC_BITS;
        (((raw) << shift) as i32) >> shift
    }

    /// Corrupts a slice of accumulator values in place, returning how many
    /// were flipped.
    pub fn corrupt_slice(&mut self, values: &mut [i32]) -> u64 {
        let before = self.injected;
        for v in values.iter_mut() {
            *v = self.corrupt(*v);
        }
        self.injected - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ber_never_corrupts() {
        let mut inj = FaultInjector::new(0.0, BitFlipModel::default(), 1);
        let mut values: Vec<i32> = (0..1000).collect();
        let flips = inj.corrupt_slice(&mut values);
        assert_eq!(flips, 0);
        assert_eq!(values, (0..1000).collect::<Vec<i32>>());
        assert_eq!(inj.examined(), 1000);
    }

    #[test]
    fn unit_ber_always_corrupts() {
        let mut inj = FaultInjector::new(1.0, BitFlipModel::MostSignificant, 1);
        let mut values: Vec<i32> = (1..100).collect();
        let flips = inj.corrupt_slice(&mut values);
        assert_eq!(flips, 99);
        for (i, v) in values.iter().enumerate() {
            assert_ne!(*v, (i + 1) as i32);
        }
    }

    #[test]
    fn msb_flip_of_positive_value_goes_negative() {
        let mut inj = FaultInjector::new(1.0, BitFlipModel::MostSignificant, 7);
        let corrupted = inj.corrupt(5);
        assert!(
            corrupted < 0,
            "MSB flip of a small positive value must go negative, got {corrupted}"
        );
        // Flipping the MSB twice restores the original value.
        let mut inj2 = FaultInjector::new(1.0, BitFlipModel::MostSignificant, 7);
        assert_eq!(inj2.corrupt(corrupted), 5);
    }

    #[test]
    fn approximate_rate_matches_ber() {
        let mut inj = FaultInjector::new(0.1, BitFlipModel::default(), 99);
        let mut values = vec![1234i32; 20_000];
        let flips = inj.corrupt_slice(&mut values) as f64;
        let rate = flips / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn uniform_top_flips_only_high_bits() {
        let mut inj = FaultInjector::new(1.0, BitFlipModel::UniformTop { n: 4 }, 3);
        for _ in 0..200 {
            let corrupted = inj.corrupt(0);
            let changed = corrupted as u32 & ((1 << ACC_BITS) - 1);
            let bit = 31 - changed.leading_zeros();
            // Sign extension fills the top 8 bits of the i32; within the
            // 24-bit word only bits 20..=23 are eligible.
            let bit24 = bit.min(ACC_BITS - 1);
            assert!(bit24 >= ACC_BITS - 4, "flipped bit {bit24}");
        }
    }

    #[test]
    #[should_panic(expected = "BER must be in")]
    fn invalid_ber_panics() {
        let _ = FaultInjector::new(1.5, BitFlipModel::default(), 0);
    }

    #[test]
    fn uniform_all_covers_low_bits_eventually() {
        let mut inj = FaultInjector::new(1.0, BitFlipModel::UniformAll, 5);
        let mut saw_low_bit = false;
        for _ in 0..500 {
            let corrupted = inj.corrupt(0);
            if corrupted.unsigned_abs() < (1 << 8) && corrupted != 0 {
                saw_low_bit = true;
                break;
            }
        }
        assert!(saw_low_bit);
    }
}
