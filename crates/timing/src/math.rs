//! Small numeric helpers: the standard-normal CDF used to turn timing slack
//! into an error probability.

/// Complementary error function.
///
/// Uses the Chebyshev-fitted rational approximation (Numerical Recipes
/// `erfcc`), whose fractional error is below `1.2e-7` over the full range —
/// accurate enough for the timing-error tail probabilities (down to ~1e-9)
/// used by the dynamic timing analyzer.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `P(Z <= x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Upper-tail probability of the standard normal, `P(Z > x)`.
///
/// This is the quantity the timing model needs: the probability that the
/// random delay component pushes a path past the clock edge.
pub fn normal_tail(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error below `1.15e-9`).  Used to back out the stress level at
/// which a target error probability is reached.
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns `None` when the samples are shorter than two points or either
/// sample has zero variance.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x).powi(2);
        var_y += (y - mean_y).powi(2);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x * var_y).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.0, 0.5, 1.0, 2.0, 3.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn normal_tail_small_probabilities() {
        // Known tail values.
        assert!((normal_tail(3.0) - 1.349_9e-3).abs() / 1.349_9e-3 < 1e-3);
        assert!((normal_tail(5.0) - 2.866_5e-7).abs() / 2.866_5e-7 < 1e-2);
        assert!(normal_tail(8.0) < 1e-14);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn quantile_rejects_invalid_input() {
        let _ = normal_quantile(1.5);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        let ys_neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson_correlation(&xs, &ys_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert!(pearson_correlation(&[1.0], &[2.0]).is_none());
        assert!(pearson_correlation(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(pearson_correlation(&[1.0, 2.0], &[2.0, 3.0, 4.0]).is_none());
    }
}
