//! Timing-error-rate estimation helpers and the TER → BER conversion of the
//! paper's Eq. (1).

use accel_sim::{ArrayConfig, ComputeSchedule, Dataflow, GemmProblem, SimError, SimOptions};

use crate::delay::DelayModel;
use crate::dta::{DynamicTimingAnalyzer, TimingReport};
use crate::pvta::OperatingCondition;

/// Bit error rate of an output activation computed with `n_macs` MAC
/// operations, each failing independently with probability `ter`
/// (the paper's Eq. (1): `BER = 1 - (1 - TER)^N`).
///
/// The computation is carried out in log-space so that very small TERs do
/// not underflow.
///
/// # Example
///
/// ```
/// use timing::ber_from_ter;
///
/// let ber = ber_from_ter(1e-5, 4608);
/// assert!(ber > 0.04 && ber < 0.05);
/// assert_eq!(ber_from_ter(0.0, 1000), 0.0);
/// ```
pub fn ber_from_ter(ter: f64, n_macs: usize) -> f64 {
    if ter <= 0.0 || n_macs == 0 {
        return 0.0;
    }
    if ter >= 1.0 {
        return 1.0;
    }
    // 1 - (1-ter)^n = 1 - exp(n * ln(1-ter)), using ln_1p for accuracy.
    -(n_macs as f64 * (-ter).ln_1p()).exp_m1()
}

/// Inverse of [`ber_from_ter`]: the MAC-level TER that yields the target
/// activation-level BER for outputs of `n_macs` MACs.
///
/// Useful for answering "how much TER reduction do we need before the
/// network-level error rate becomes acceptable".
pub fn ter_for_target_ber(ber: f64, n_macs: usize) -> f64 {
    if ber <= 0.0 || n_macs == 0 {
        return 0.0;
    }
    if ber >= 1.0 {
        return 1.0;
    }
    // ter = 1 - (1-ber)^(1/n)
    -((-ber).ln_1p() / n_macs as f64).exp_m1()
}

/// Per-layer TER result, pairing the measured rate with the layer's
/// MAC-per-output count so the BER can be derived.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTer {
    /// Human-readable layer name (e.g. `"conv3_2"`).
    pub layer: String,
    /// Measured (or estimated) MAC-level timing error rate.
    pub ter: f64,
    /// Number of MAC operations accumulated into one output activation.
    pub macs_per_output: usize,
    /// Measured sign-flip rate for the same run.
    pub sign_flip_rate: f64,
}

impl LayerTer {
    /// Activation-level BER implied by this layer's TER (Eq. (1)).
    pub fn ber(&self) -> f64 {
        ber_from_ter(self.ter, self.macs_per_output)
    }
}

/// High-level estimator: runs a GEMM on the array under a schedule and
/// operating condition and reports the timing statistics.
///
/// This is the glue most experiments use; it owns a [`DelayModel`] and an
/// [`ArrayConfig`] and evaluates any number of (problem, schedule, corner)
/// combinations.
#[derive(Debug, Clone)]
pub struct TerEstimator {
    delay: DelayModel,
    array: ArrayConfig,
    dataflow: Dataflow,
    options: SimOptions,
}

impl TerEstimator {
    /// Creates an estimator for the paper's 16x4 output-stationary array
    /// with the default delay model and exhaustive simulation.
    pub fn new() -> Self {
        TerEstimator {
            delay: DelayModel::nangate15_like(),
            array: ArrayConfig::paper_default(),
            dataflow: Dataflow::OutputStationary,
            options: SimOptions::exhaustive(),
        }
    }

    /// Overrides the delay model.
    pub fn with_delay_model(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Overrides the array geometry.
    pub fn with_array(mut self, array: ArrayConfig) -> Self {
        self.array = array;
        self
    }

    /// Overrides the dataflow.
    pub fn with_dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Overrides the simulation options (e.g. pixel sampling).
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// The array geometry used by this estimator.
    pub fn array(&self) -> &ArrayConfig {
        &self.array
    }

    /// The delay model used by this estimator.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay
    }

    /// Analyzes a problem under the baseline schedule.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (dimension mismatches, invalid
    /// schedules).
    pub fn analyze(
        &self,
        problem: &GemmProblem,
        condition: &OperatingCondition,
    ) -> Result<TimingReport, SimError> {
        let schedule = ComputeSchedule::baseline(
            problem.reduction_len(),
            problem.num_channels(),
            self.array.cols(),
        );
        self.analyze_with_schedule(problem, &schedule, condition)
    }

    /// Analyzes a problem under an explicit compute schedule.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (dimension mismatches, invalid
    /// schedules).
    pub fn analyze_with_schedule(
        &self,
        problem: &GemmProblem,
        schedule: &ComputeSchedule,
        condition: &OperatingCondition,
    ) -> Result<TimingReport, SimError> {
        let mut dta = DynamicTimingAnalyzer::new(self.delay, *condition);
        problem.simulate_with_schedule(
            &self.array,
            self.dataflow,
            schedule,
            &self.options,
            &mut dta,
        )?;
        Ok(dta.report())
    }
}

impl Default for TerEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::Matrix;

    #[test]
    fn ber_limits() {
        assert_eq!(ber_from_ter(0.0, 100), 0.0);
        assert_eq!(ber_from_ter(1e-5, 0), 0.0);
        assert_eq!(ber_from_ter(1.0, 10), 1.0);
        assert_eq!(ber_from_ter(2.0, 10), 1.0);
    }

    #[test]
    fn ber_matches_direct_formula() {
        for &(ter, n) in &[(1e-3f64, 100usize), (1e-5, 4608), (0.2, 7)] {
            let direct = 1.0 - (1.0 - ter).powi(n as i32);
            assert!(
                (ber_from_ter(ter, n) - direct).abs() < 1e-12,
                "ter={ter} n={n}"
            );
        }
    }

    #[test]
    fn ber_is_monotone_in_both_arguments() {
        assert!(ber_from_ter(1e-4, 100) < ber_from_ter(1e-3, 100));
        assert!(ber_from_ter(1e-4, 100) < ber_from_ter(1e-4, 1000));
    }

    #[test]
    fn ter_for_target_ber_inverts() {
        for &(ber, n) in &[(0.1, 1000usize), (0.01, 4608), (0.5, 64)] {
            let ter = ter_for_target_ber(ber, n);
            assert!((ber_from_ter(ter, n) - ber).abs() < 1e-9, "ber={ber} n={n}");
        }
        assert_eq!(ter_for_target_ber(0.0, 100), 0.0);
        assert_eq!(ter_for_target_ber(1.0, 100), 1.0);
    }

    #[test]
    fn layer_ter_ber() {
        let layer = LayerTer {
            layer: "conv1".into(),
            ter: 1e-4,
            macs_per_output: 576,
            sign_flip_rate: 0.01,
        };
        assert!((layer.ber() - ber_from_ter(1e-4, 576)).abs() < 1e-15);
    }

    #[test]
    fn estimator_reports_more_errors_under_stress() {
        let w = Matrix::from_fn(48, 4, |r, c| (((r * 11 + c * 3) % 15) as i8) - 7);
        let a = Matrix::from_fn(48, 12, |r, c| ((r + 2 * c) % 5) as i8);
        let problem = GemmProblem::new(w, a).unwrap();
        let est = TerEstimator::new();
        let ideal = est.analyze(&problem, &OperatingCondition::ideal()).unwrap();
        let worst = est
            .analyze(&problem, &OperatingCondition::aging_vt(10.0, 0.05))
            .unwrap();
        assert!(worst.ter > ideal.ter);
        assert_eq!(ideal.total_cycles, worst.total_cycles);
    }

    #[test]
    fn estimator_builder_overrides() {
        let est = TerEstimator::new()
            .with_array(ArrayConfig::new(8, 8))
            .with_dataflow(Dataflow::WeightStationary)
            .with_options(SimOptions::sampled(4, 1));
        assert_eq!(est.array().cols(), 8);
        let w = Matrix::from_fn(16, 8, |r, c| ((r + c) % 7) as i8 - 3);
        let a = Matrix::from_fn(16, 20, |r, c| ((r * c) % 4) as i8);
        let problem = GemmProblem::new(w, a).unwrap();
        let report = est
            .analyze(&problem, &OperatingCondition::vt(0.05))
            .unwrap();
        // Sampling restricts the analysis to 4 pixels x 8 channels x 16 MACs.
        assert_eq!(report.total_cycles, 4 * 8 * 16);
    }
}
