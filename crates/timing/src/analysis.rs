//! The unified timing-analysis interface: one vocabulary for *where* a
//! design operates ([`OperatingCorner`]) and one trait for *how* its timing
//! error rate is derived ([`TimingAnalysis`]).
//!
//! Historically the crate offered three disconnected paths:
//!
//! * the analytic depth-histogram evaluation ([`DepthHistogram::ter`]),
//! * the per-cycle Monte-Carlo sampling mode of
//!   [`crate::DynamicTimingAnalyzer`], and
//! * the per-PE process-variation machinery
//!   ([`crate::DynamicTimingAnalyzer::with_process_variation`]),
//!
//! which callers had to hand-wire together.  This module folds all three
//! behind [`TimingAnalysis`]: every engine consumes a triggered-depth
//! histogram (one simulation pass, reusable across corners) and an
//! [`OperatingCorner`] — an [`OperatingCondition`] plus a [`Variation`]
//! describing the silicon — and produces a [`TerEstimate`] with an optional
//! spread.  The pipeline crate's `ErrorModel` stage builds directly on these
//! engines, so benches and tests never construct an analyzer by hand.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::delay::DelayModel;
use crate::dta::DepthHistogram;
use crate::pvta::OperatingCondition;

/// Silicon variation component of an [`OperatingCorner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variation {
    /// Typical silicon: the per-PE process sigma is folded into the
    /// per-cycle random delay component (the crate's historical behaviour).
    #[default]
    Typical,
    /// A specific die: each of the `rows x cols` processing elements
    /// receives a fixed Gaussian delay offset drawn with `seed` (stddev
    /// [`DelayModel::sigma_process`]); the per-cycle random component then
    /// only models cycle-to-cycle environmental noise.
    PerPe {
        /// Array rows of the die.
        rows: usize,
        /// Array columns of the die.
        cols: usize,
        /// Seed of the per-PE process-offset draw.
        seed: u64,
    },
}

impl Variation {
    /// Per-PE variation for the given array geometry.
    pub fn per_pe(array: &accel_sim::ArrayConfig, seed: u64) -> Self {
        Variation::PerPe {
            rows: array.rows(),
            cols: array.cols(),
            seed,
        }
    }

    /// One [`Variation::PerPe`] per seed, all on the same array geometry —
    /// the die axis of a corner sweep.
    pub fn dies(array: &accel_sim::ArrayConfig, seeds: impl IntoIterator<Item = u64>) -> Vec<Self> {
        seeds
            .into_iter()
            .map(|seed| Variation::per_pe(array, seed))
            .collect()
    }

    /// Short stable label (`"typical"` / `"pe-var[16x4,seed=3]"`), used in
    /// report `corner` fields and cache fingerprints.
    pub fn label(&self) -> String {
        match self {
            Variation::Typical => "typical".to_string(),
            Variation::PerPe { rows, cols, seed } => {
                format!("pe-var[{rows}x{cols},seed={seed}]")
            }
        }
    }
}

impl std::fmt::Display for Variation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A full operating corner: the environmental condition (voltage,
/// temperature, aging) plus the silicon variation the analysis assumes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OperatingCorner {
    /// Voltage/temperature/aging condition.
    pub condition: OperatingCondition,
    /// Silicon variation model.
    pub variation: Variation,
}

impl OperatingCorner {
    /// A corner at typical silicon (process sigma folded into cycle noise).
    pub fn nominal(condition: OperatingCondition) -> Self {
        OperatingCorner {
            condition,
            variation: Variation::Typical,
        }
    }

    /// A corner on a specific die: per-PE offsets for `array` drawn with
    /// `seed`.
    pub fn per_pe(
        condition: OperatingCondition,
        array: &accel_sim::ArrayConfig,
        seed: u64,
    ) -> Self {
        OperatingCorner {
            condition,
            variation: Variation::per_pe(array, seed),
        }
    }

    /// The full corner grid of a sweep: every variation (die) crossed with
    /// every condition, die-major — all conditions of the first die, then
    /// all conditions of the next.  This is the cell order the pipeline
    /// crate's sweep subsystem evaluates.
    pub fn grid(conditions: &[OperatingCondition], variations: &[Variation]) -> Vec<Self> {
        variations
            .iter()
            .flat_map(|&variation| {
                conditions.iter().map(move |&condition| OperatingCorner {
                    condition,
                    variation,
                })
            })
            .collect()
    }

    /// Stable label: the condition name alone at typical silicon, otherwise
    /// `"<condition>+<variation>"` (e.g. `"Aging&VT-5%+pe-var[16x4,seed=3]"`).
    pub fn label(&self) -> String {
        match self.variation {
            Variation::Typical => self.condition.name.to_string(),
            Variation::PerPe { .. } => {
                format!("{}+{}", self.condition.name, self.variation.label())
            }
        }
    }
}

impl std::fmt::Display for OperatingCorner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Fixed per-PE process delay offsets of one die.
///
/// This is the single place per-PE offsets are drawn, shared by the
/// cycle-level analyzer
/// ([`crate::DynamicTimingAnalyzer::with_process_variation`]) and the
/// histogram-based engines here, so the two paths model the same die for the
/// same `(geometry, sigma, seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PeOffsets {
    offsets: Vec<f64>,
}

impl PeOffsets {
    /// Draws one fractional delay offset per PE from `N(0, sigma)` using a
    /// Box-Muller transform over an [`StdRng`] seeded with `seed`.
    pub fn draw(pe_count: usize, sigma: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let offsets = (0..pe_count)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                z * sigma
            })
            .collect();
        PeOffsets { offsets }
    }

    /// The offsets a [`Variation`] implies under `delay`, or `None` at
    /// typical silicon.
    pub fn for_variation(variation: &Variation, delay: &DelayModel) -> Option<Self> {
        match *variation {
            Variation::Typical => None,
            Variation::PerPe { rows, cols, seed } => {
                Some(Self::draw(rows * cols, delay.sigma_process, seed))
            }
        }
    }

    /// The per-PE offsets (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.offsets
    }

    /// Number of PEs.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the die has no PEs.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

/// A timing-error-rate estimate with an optional spread.
///
/// The meaning of `stddev` depends on the producing engine: trial-to-trial
/// spread for Monte-Carlo sampling, PE-to-PE spread for per-PE variation,
/// `None` for a closed-form point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TerEstimate {
    /// The TER point estimate (mean over trials or PEs where applicable).
    pub ter: f64,
    /// Spread of the estimate, when the engine produces one.
    pub stddev: Option<f64>,
}

impl TerEstimate {
    /// A spread-free point estimate.
    pub fn point(ter: f64) -> Self {
        TerEstimate { ter, stddev: None }
    }

    /// Aggregates per-trial TER samples into a mean and its **sample**
    /// standard deviation (Bessel's `n - 1` correction, not the population
    /// `n` divisor): the trials are a finite sample of the sampling
    /// distribution, so the unbiased variance estimator is the right one.
    /// Fewer than two samples yield a spread of `0.0`; the spread is always
    /// `Some`, marking the estimate as sampled.
    ///
    /// This is the single aggregation every Monte-Carlo path uses —
    /// [`MonteCarloAnalysis::estimate`] feeds it all trials at once, and a
    /// sharded sweep feeds it the concatenation of per-shard
    /// [`MonteCarloAnalysis::trial_ters`] slices, which is how sharded and
    /// unsharded runs stay bit-identical.
    pub fn from_trials(ters: &[f64]) -> Self {
        let mut estimate = mean_and_spread(ters);
        estimate.stddev = Some(estimate.stddev.unwrap_or(0.0));
        estimate
    }
}

/// The common interface of every TER-derivation engine: from a
/// triggered-depth histogram (one simulation pass) to an estimate at any
/// operating corner.
pub trait TimingAnalysis: Send + Sync {
    /// Stable display name of the engine (configuration included).
    fn name(&self) -> String;

    /// Estimates the TER of the recorded cycles at `corner`.
    fn estimate(&self, hist: &DepthHistogram, corner: &OperatingCorner) -> TerEstimate;
}

/// Closed-form analytic engine: every depth bucket contributes its expected
/// error count.
///
/// * At [`Variation::Typical`] this is exactly [`DepthHistogram::ter`].
/// * At [`Variation::PerPe`] the estimate is the population average over the
///   die's PEs — each PE evaluates the histogram with its own process offset
///   (cycles are taken as uniformly spread over the array, which holds for
///   the exhaustive output-stationary sweeps the experiments run) — and
///   `stddev` reports the PE-to-PE spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticAnalysis {
    /// The MAC datapath delay model.
    pub delay: DelayModel,
}

impl AnalyticAnalysis {
    /// Wraps a delay model.
    pub fn new(delay: DelayModel) -> Self {
        AnalyticAnalysis { delay }
    }

    /// Per-PE TERs of `hist` at `condition` for explicit `offsets` (one TER
    /// per PE, offset order preserved).
    pub fn per_pe_ters(
        &self,
        hist: &DepthHistogram,
        condition: &OperatingCondition,
        offsets: &PeOffsets,
    ) -> Vec<f64> {
        offsets
            .as_slice()
            .iter()
            .map(|&offset| histogram_ter_with_offset(hist, &self.delay, condition, offset))
            .collect()
    }
}

impl Default for AnalyticAnalysis {
    fn default() -> Self {
        AnalyticAnalysis::new(DelayModel::nangate15_like())
    }
}

impl TimingAnalysis for AnalyticAnalysis {
    fn name(&self) -> String {
        "analytic".to_string()
    }

    fn estimate(&self, hist: &DepthHistogram, corner: &OperatingCorner) -> TerEstimate {
        match PeOffsets::for_variation(&corner.variation, &self.delay) {
            None => TerEstimate::point(hist.ter(&self.delay, &corner.condition)),
            Some(offsets) => {
                let ters = self.per_pe_ters(hist, &corner.condition, &offsets);
                mean_and_spread(&ters)
            }
        }
    }
}

/// Monte-Carlo engine: draws `trials` independent realizations of the error
/// count implied by the histogram's per-depth probabilities and reports
/// their mean and sample standard deviation.
///
/// Sampling is seeded and fully deterministic: trial `t` uses an [`StdRng`]
/// derived from `seed` and `t` only, so repeated estimates (and serial vs
/// parallel pipeline runs) are byte-identical.  At a [`Variation::PerPe`]
/// corner each depth uses the PE-population-averaged error probability (the
/// histogram does not retain PE identity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloAnalysis {
    /// The MAC datapath delay model.
    pub delay: DelayModel,
    /// Number of independent sampling trials.
    pub trials: u32,
    /// Base RNG seed; trial `t` derives its stream from `(seed, t)`.
    pub seed: u64,
}

impl MonteCarloAnalysis {
    /// Engine with the given trial count and seed.
    pub fn new(delay: DelayModel, trials: u32, seed: u64) -> Self {
        MonteCarloAnalysis {
            delay,
            trials,
            seed,
        }
    }

    /// Per-trial TER samples for the *global* trial indices in `trials` (a
    /// sub-range of `0..self.trials`).  Trial `t` derives its RNG stream
    /// from `(seed, t)` alone, so a trial produces the same sample no matter
    /// which range — or which shard of a sweep — computes it: concatenating
    /// the slices of any partition of `0..self.trials` in index order
    /// reproduces the unsharded sample vector exactly, and
    /// [`TerEstimate::from_trials`] of that vector equals
    /// [`MonteCarloAnalysis::estimate`] bit for bit.
    ///
    /// An empty histogram yields `0.0` for every requested trial.
    pub fn trial_ters(
        &self,
        hist: &DepthHistogram,
        corner: &OperatingCorner,
        trials: std::ops::Range<u32>,
    ) -> Vec<f64> {
        if hist.total() == 0 {
            return vec![0.0; trials.len()];
        }
        let probabilities = self.depth_probabilities(corner);
        let total = hist.total() as f64;
        trials
            .map(|trial| {
                let mut rng = StdRng::seed_from_u64(trial_seed(self.seed, trial));
                let mut errors = 0u64;
                for (depth, &count) in hist.counts().iter().enumerate() {
                    if count > 0 {
                        errors += binomial_sample(&mut rng, count, probabilities[depth]);
                    }
                }
                errors as f64 / total
            })
            .collect()
    }

    fn depth_probabilities(&self, corner: &OperatingCorner) -> Vec<f64> {
        let offsets = PeOffsets::for_variation(&corner.variation, &self.delay);
        (0..=crate::delay::MAX_DEPTH)
            .map(|depth| match &offsets {
                None => self
                    .delay
                    .error_probability_for_depth(depth, &corner.condition, 0.0),
                Some(offsets) if !offsets.is_empty() => {
                    let sum: f64 = offsets
                        .as_slice()
                        .iter()
                        .map(|&o| {
                            self.delay
                                .error_probability_for_depth(depth, &corner.condition, o)
                        })
                        .sum();
                    sum / offsets.len() as f64
                }
                Some(_) => 0.0,
            })
            .collect()
    }
}

impl Default for MonteCarloAnalysis {
    fn default() -> Self {
        MonteCarloAnalysis::new(DelayModel::nangate15_like(), 32, 0)
    }
}

impl TimingAnalysis for MonteCarloAnalysis {
    fn name(&self) -> String {
        format!("monte-carlo[trials={},seed={}]", self.trials, self.seed)
    }

    fn estimate(&self, hist: &DepthHistogram, corner: &OperatingCorner) -> TerEstimate {
        TerEstimate::from_trials(&self.trial_ters(hist, corner, 0..self.trials))
    }
}

/// Mixes the base seed and trial index into one per-trial stream seed
/// (SplitMix64 finalizer).  A plain `seed + trial` would make
/// `(seed, trial+1)` and `(seed+1, trial)` share a stream, so sweeps over
/// nearby base seeds would produce strongly correlated "independent"
/// estimates; the non-linear mix keeps streams distinct across both axes.
fn trial_seed(seed: u64, trial: u32) -> u64 {
    let mut z = seed ^ u64::from(trial).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expected TER of `hist` evaluated with a fixed per-PE process offset.
fn histogram_ter_with_offset(
    hist: &DepthHistogram,
    delay: &DelayModel,
    condition: &OperatingCondition,
    offset: f64,
) -> f64 {
    if hist.total() == 0 {
        return 0.0;
    }
    let expected: f64 = hist
        .counts()
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(depth, &count)| {
            count as f64 * delay.error_probability_for_depth(depth as u32, condition, offset)
        })
        .sum();
    expected / hist.total() as f64
}

/// Mean and **sample** standard deviation (`n - 1` divisor) of a set of
/// TERs (PEs or trials).  See [`TerEstimate::from_trials`] for why sample —
/// not population — stddev is the contract.
fn mean_and_spread(values: &[f64]) -> TerEstimate {
    if values.is_empty() {
        return TerEstimate::point(0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return TerEstimate {
            ter: mean,
            stddev: Some(0.0),
        };
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    TerEstimate {
        ter: mean,
        stddev: Some(var.sqrt()),
    }
}

/// Samples `Binomial(n, p)` by geometric skipping: expected cost `O(n * p)`,
/// which is what makes Monte-Carlo trials over billion-cycle histograms
/// affordable at the paper's 1e-7..1e-3 error probabilities.
fn binomial_sample(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // ln(1 - p), always negative here.
    let ln_q = (-p).ln_1p();
    let mut successes = 0u64;
    let mut position = 0u64;
    loop {
        let u: f64 = rng.gen::<f64>();
        if u <= 0.0 {
            // Probability-zero draw; treat as "no further successes".
            break;
        }
        // Failures before the next success are geometric with parameter p.
        let skip = (u.ln() / ln_q).floor();
        if !skip.is_finite() || skip >= (n - position) as f64 {
            break;
        }
        position += skip as u64 + 1;
        successes += 1;
        if position >= n {
            break;
        }
    }
    successes
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{ArrayConfig, Dataflow, GemmProblem, Matrix, SimOptions};

    fn demo_histogram() -> DepthHistogram {
        let w = Matrix::from_fn(64, 4, |r, c| (((r * 13 + c * 7) % 17) as i8) - 8);
        let a = Matrix::from_fn(64, 16, |r, c| ((r * 3 + c) % 6) as i8);
        let mut hist = DepthHistogram::new();
        GemmProblem::new(w, a)
            .unwrap()
            .simulate(
                &ArrayConfig::paper_default(),
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut hist,
            )
            .unwrap();
        hist
    }

    fn stressed() -> OperatingCondition {
        OperatingCondition::aging_vt(10.0, 0.05)
    }

    #[test]
    fn corner_labels_are_stable() {
        let nominal = OperatingCorner::nominal(stressed());
        assert_eq!(nominal.label(), "Aging&VT-5%");
        assert_eq!(nominal.to_string(), nominal.label());
        let die = OperatingCorner::per_pe(stressed(), &ArrayConfig::paper_default(), 3);
        assert_eq!(die.label(), "Aging&VT-5%+pe-var[16x4,seed=3]");
        assert_eq!(Variation::Typical.label(), "typical");
    }

    #[test]
    fn analytic_typical_matches_histogram_ter() {
        let hist = demo_histogram();
        let engine = AnalyticAnalysis::default();
        let estimate = engine.estimate(&hist, &OperatingCorner::nominal(stressed()));
        assert_eq!(estimate.ter, hist.ter(&engine.delay, &stressed()));
        assert_eq!(estimate.stddev, None);
    }

    #[test]
    fn per_pe_population_average_is_near_typical() {
        let hist = demo_histogram();
        let engine = AnalyticAnalysis::default();
        let typical = engine
            .estimate(&hist, &OperatingCorner::nominal(stressed()))
            .ter;
        let die = engine.estimate(
            &hist,
            &OperatingCorner::per_pe(stressed(), &ArrayConfig::paper_default(), 7),
        );
        assert!(die.ter > 0.0);
        // The per-PE population estimate models the same physics with the
        // process sigma attributed per-PE instead of folded per-cycle.
        assert!(die.ter < typical * 10.0 && die.ter > typical / 10.0);
        // A die's PEs genuinely differ.
        assert!(die.stddev.unwrap() > 0.0);
    }

    #[test]
    fn per_pe_ters_depend_on_seed_but_not_on_evaluation_order() {
        let hist = demo_histogram();
        let engine = AnalyticAnalysis::default();
        let offsets_a = PeOffsets::draw(64, engine.delay.sigma_process, 1);
        let offsets_b = PeOffsets::draw(64, engine.delay.sigma_process, 2);
        let ters_a = engine.per_pe_ters(&hist, &stressed(), &offsets_a);
        let ters_b = engine.per_pe_ters(&hist, &stressed(), &offsets_b);
        assert_ne!(ters_a, ters_b);
        // Same seed: identical, element for element.
        let again = engine.per_pe_ters(
            &hist,
            &stressed(),
            &PeOffsets::draw(64, engine.delay.sigma_process, 1),
        );
        assert_eq!(ters_a, again);
    }

    #[test]
    fn monte_carlo_is_deterministic_and_unbiased() {
        let hist = demo_histogram();
        let analytic = AnalyticAnalysis::default()
            .estimate(&hist, &OperatingCorner::nominal(stressed()))
            .ter;
        let engine = MonteCarloAnalysis::new(DelayModel::nangate15_like(), 64, 11);
        let corner = OperatingCorner::nominal(stressed());
        let a = engine.estimate(&hist, &corner);
        let b = engine.estimate(&hist, &corner);
        assert_eq!(a, b, "seeded Monte-Carlo must be reproducible");
        let stddev = a.stddev.unwrap();
        assert!(stddev > 0.0);
        // 64 seeded trials: the mean lands within a few standard errors of
        // the analytic expectation.
        let stderr = stddev / (64f64).sqrt();
        assert!(
            (a.ter - analytic).abs() < 5.0 * stderr + 1e-12,
            "mc {} vs analytic {analytic} (stderr {stderr})",
            a.ter
        );
    }

    #[test]
    fn nearby_base_seeds_use_distinct_trial_streams() {
        // A linear seed+trial scheme would make (seed=0, trial=1) and
        // (seed=1, trial=0) identical and the two estimates nearly equal.
        assert_ne!(trial_seed(0, 1), trial_seed(1, 0));
        let hist = demo_histogram();
        let corner = OperatingCorner::nominal(stressed());
        let a =
            MonteCarloAnalysis::new(DelayModel::nangate15_like(), 32, 0).estimate(&hist, &corner);
        let b =
            MonteCarloAnalysis::new(DelayModel::nangate15_like(), 32, 1).estimate(&hist, &corner);
        assert_ne!(a, b, "adjacent base seeds must not share trial streams");
    }

    #[test]
    fn monte_carlo_handles_degenerate_inputs() {
        let engine = MonteCarloAnalysis::default();
        let corner = OperatingCorner::nominal(stressed());
        let empty = engine.estimate(&DepthHistogram::new(), &corner);
        assert_eq!(empty.ter, 0.0);
        let zero_trials = MonteCarloAnalysis::new(DelayModel::nangate15_like(), 0, 0)
            .estimate(&demo_histogram(), &corner);
        assert_eq!(zero_trials.ter, 0.0);
    }

    #[test]
    fn binomial_sampler_limits_and_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(binomial_sample(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial_sample(&mut rng, 100, 1.0), 100);
        assert_eq!(binomial_sample(&mut rng, 0, 0.5), 0);
        let draws = 400;
        let n = 1000u64;
        let p = 0.01;
        let total: u64 = (0..draws).map(|_| binomial_sample(&mut rng, n, p)).sum();
        let mean = total as f64 / draws as f64;
        // E = 10, sigma ~ 3.1; 400 draws put the sample mean within ~0.5.
        assert!((mean - 10.0).abs() < 1.0, "mean {mean}");
        // No draw may exceed n.
        assert!((0..50).all(|_| binomial_sample(&mut rng, 3, 0.9) <= 3));
    }

    #[test]
    fn pe_offsets_match_analyzer_drawing() {
        // The shared drawing is what with_process_variation uses, so the
        // histogram engines and the cycle-level analyzer model the same die.
        let delay = DelayModel::nangate15_like();
        let offsets = PeOffsets::draw(8, delay.sigma_process, 42);
        assert_eq!(offsets.len(), 8);
        assert!(!offsets.is_empty());
        assert_eq!(offsets, PeOffsets::draw(8, delay.sigma_process, 42));
        // Offsets are centred: with sigma 0.05 a gross bias would be a bug.
        let mean: f64 = offsets.as_slice().iter().sum::<f64>() / offsets.len() as f64;
        assert!(mean.abs() < 0.1);
    }

    #[test]
    fn corner_grid_is_die_major() {
        let conditions = [OperatingCondition::ideal(), stressed()];
        let array = ArrayConfig::paper_default();
        let mut variations = vec![Variation::Typical];
        variations.extend(Variation::dies(&array, [1, 2]));
        let grid = OperatingCorner::grid(&conditions, &variations);
        assert_eq!(grid.len(), 6);
        // All conditions of one die before the next die.
        assert_eq!(grid[0].label(), "Ideal");
        assert_eq!(grid[1].label(), "Aging&VT-5%");
        assert_eq!(grid[2].label(), "Ideal+pe-var[16x4,seed=1]");
        assert_eq!(grid[5].label(), "Aging&VT-5%+pe-var[16x4,seed=2]");
        assert!(OperatingCorner::grid(&[], &variations).is_empty());
    }

    #[test]
    fn trial_ters_shard_concatenation_matches_full_run() {
        let hist = demo_histogram();
        let corner = OperatingCorner::nominal(stressed());
        let engine = MonteCarloAnalysis::new(DelayModel::nangate15_like(), 24, 5);
        let full = engine.trial_ters(&hist, &corner, 0..24);
        assert_eq!(full.len(), 24);
        let mut sharded = engine.trial_ters(&hist, &corner, 0..7);
        sharded.extend(engine.trial_ters(&hist, &corner, 7..8));
        sharded.extend(engine.trial_ters(&hist, &corner, 8..24));
        assert_eq!(full, sharded, "trial streams must not depend on the shard");
        assert_eq!(
            engine.estimate(&hist, &corner),
            TerEstimate::from_trials(&full)
        );
    }

    #[test]
    fn from_trials_uses_the_sample_stddev() {
        // Hand-computed three-trial case: mean 0.3; squared deviations
        // 0.04 + 0.01 + 0.01 = 0.06; sample variance 0.06 / 2 = 0.03.
        let estimate = TerEstimate::from_trials(&[0.1, 0.4, 0.4]);
        assert!((estimate.ter - 0.3).abs() < 1e-15);
        let sample = 0.03f64.sqrt();
        let population = 0.02f64.sqrt();
        let stddev = estimate.stddev.unwrap();
        assert!((stddev - sample).abs() < 1e-15, "stddev {stddev}");
        assert!((stddev - population).abs() > 1e-3, "must not be population");
        // Degenerate sample sizes: spread present but zero.
        assert_eq!(
            TerEstimate::from_trials(&[0.5]),
            TerEstimate {
                ter: 0.5,
                stddev: Some(0.0)
            }
        );
        assert_eq!(TerEstimate::from_trials(&[]).stddev, Some(0.0));
    }

    #[test]
    fn engine_names_encode_configuration() {
        assert_eq!(AnalyticAnalysis::default().name(), "analytic");
        assert_eq!(
            MonteCarloAnalysis::new(DelayModel::nangate15_like(), 16, 9).name(),
            "monte-carlo[trials=16,seed=9]"
        );
    }
}
