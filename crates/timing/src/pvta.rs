//! Process, voltage, temperature and aging (PVTA) variation models.
//!
//! The paper evaluates six operating corners: Ideal, 3 % and 5 % combined
//! voltage/temperature fluctuation, 10-year NBTI aging, and the combinations
//! of aging with the VT corners.  Each corner is mapped to a multiplicative
//! delay derating factor applied to every timing path.

/// First-order NBTI aging model.
///
/// Negative-bias temperature instability dominates transistor aging in
/// digital logic; its threshold-voltage shift (and hence the path-delay
/// increase) follows a power law in stress time,
/// `Δdelay/delay = k * t_years^n`.  The default exponent `n = 0.16` is the
/// commonly reported NBTI time exponent; `k` scales the 10-year degradation
/// to a few percent, matching the guardband erosion the paper describes.
///
/// # Example
///
/// ```
/// use timing::AgingModel;
///
/// let nbti = AgingModel::default();
/// assert_eq!(nbti.delay_derate(0.0), 0.0);
/// assert!(nbti.delay_derate(10.0) > nbti.delay_derate(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingModel {
    /// Fractional delay increase after one year of stress.
    pub k: f64,
    /// Power-law time exponent.
    pub n: f64,
}

impl Default for AgingModel {
    fn default() -> Self {
        // 10-year degradation of k * 10^0.16 ≈ 1.45 k; with k = 0.04 this is
        // ≈ 5.8 % — in the range reported for scaled FinFET nodes.
        AgingModel { k: 0.04, n: 0.16 }
    }
}

impl AgingModel {
    /// Creates an aging model with explicit parameters.
    pub fn new(k: f64, n: f64) -> Self {
        AgingModel { k, n }
    }

    /// Fractional delay increase after `years` of stress.
    pub fn delay_derate(&self, years: f64) -> f64 {
        if years <= 0.0 {
            0.0
        } else {
            self.k * years.powf(self.n)
        }
    }
}

/// An operating corner: a combined voltage/temperature fluctuation magnitude
/// and an aging duration.
///
/// The fluctuation is expressed as the paper does ("3 % VT fluctuation",
/// "5 % VT fluctuation"); the translation to a *delay* derate applies the
/// sensitivity factor of the delay to the supply/temperature excursion,
/// which is larger than one for scaled nodes (see
/// [`OperatingCondition::vt_delay_sensitivity`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingCondition {
    /// Human-readable corner name (e.g. `"Aging&VT-5%"`).
    pub name: &'static str,
    /// Combined voltage/temperature fluctuation magnitude (e.g. `0.05` for
    /// the paper's 5 % corner).
    pub vt_fluctuation: f64,
    /// Aging stress duration in years.
    pub aging_years: f64,
    /// Delay sensitivity to the VT fluctuation (delay derate = sensitivity x
    /// fluctuation).  Defaults to 2.0: a 5 % supply droop costs ~10 % delay,
    /// typical of near-nominal FinFET operation.
    pub vt_delay_sensitivity: f64,
    /// Aging model used to convert `aging_years` into a delay derate.
    pub aging_model: AgingModel,
}

impl OperatingCondition {
    /// Default VT-fluctuation-to-delay sensitivity.
    pub const DEFAULT_VT_SENSITIVITY: f64 = 2.0;

    /// Nominal (fresh silicon, no fluctuation) conditions — the paper's
    /// "Ideal" corner.
    pub fn ideal() -> Self {
        OperatingCondition {
            name: "Ideal",
            vt_fluctuation: 0.0,
            aging_years: 0.0,
            vt_delay_sensitivity: Self::DEFAULT_VT_SENSITIVITY,
            aging_model: AgingModel::default(),
        }
    }

    /// A voltage/temperature fluctuation corner with fresh silicon.
    pub fn vt(fluctuation: f64) -> Self {
        OperatingCondition {
            name: match () {
                _ if (fluctuation - 0.03).abs() < 1e-9 => "VT-3%",
                _ if (fluctuation - 0.05).abs() < 1e-9 => "VT-5%",
                _ => "VT",
            },
            vt_fluctuation: fluctuation,
            aging_years: 0.0,
            vt_delay_sensitivity: Self::DEFAULT_VT_SENSITIVITY,
            aging_model: AgingModel::default(),
        }
    }

    /// An aging-only corner (no VT fluctuation).
    pub fn aging(years: f64) -> Self {
        OperatingCondition {
            name: if (years - 10.0).abs() < 1e-9 {
                "Aging-10y"
            } else {
                "Aging"
            },
            vt_fluctuation: 0.0,
            aging_years: years,
            vt_delay_sensitivity: Self::DEFAULT_VT_SENSITIVITY,
            aging_model: AgingModel::default(),
        }
    }

    /// A combined aging + VT fluctuation corner.
    pub fn aging_vt(years: f64, fluctuation: f64) -> Self {
        OperatingCondition {
            name: match () {
                _ if (fluctuation - 0.03).abs() < 1e-9 => "Aging&VT-3%",
                _ if (fluctuation - 0.05).abs() < 1e-9 => "Aging&VT-5%",
                _ => "Aging&VT",
            },
            vt_fluctuation: fluctuation,
            aging_years: years,
            vt_delay_sensitivity: Self::DEFAULT_VT_SENSITIVITY,
            aging_model: AgingModel::default(),
        }
    }

    /// Overrides the VT delay sensitivity.
    pub fn with_vt_sensitivity(mut self, sensitivity: f64) -> Self {
        self.vt_delay_sensitivity = sensitivity;
        self
    }

    /// Overrides the aging model.
    pub fn with_aging_model(mut self, model: AgingModel) -> Self {
        self.aging_model = model;
        self
    }

    /// Total multiplicative delay derate of this corner relative to nominal
    /// conditions (`1.0` for the Ideal corner).
    pub fn delay_derate(&self) -> f64 {
        1.0 + self.vt_fluctuation * self.vt_delay_sensitivity
            + self.aging_model.delay_derate(self.aging_years)
    }
}

impl Default for OperatingCondition {
    fn default() -> Self {
        Self::ideal()
    }
}

impl std::fmt::Display for OperatingCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

/// The six corners evaluated in Figs. 10 and 11 of the paper, in the order
/// they appear on the x-axis.
pub fn paper_conditions() -> [OperatingCondition; 6] {
    [
        OperatingCondition::ideal(),
        OperatingCondition::vt(0.03),
        OperatingCondition::vt(0.05),
        OperatingCondition::aging(10.0),
        OperatingCondition::aging_vt(10.0, 0.03),
        OperatingCondition::aging_vt(10.0, 0.05),
    ]
}

/// Names of the six paper corners, for table headers.
pub const PAPER_CONDITIONS: [&str; 6] = [
    "Ideal",
    "VT-3%",
    "VT-5%",
    "Aging-10y",
    "Aging&VT-3%",
    "Aging&VT-5%",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aging_is_monotone_and_zero_at_start() {
        let m = AgingModel::default();
        assert_eq!(m.delay_derate(0.0), 0.0);
        assert_eq!(m.delay_derate(-1.0), 0.0);
        let mut prev = 0.0;
        for years in [0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
            let d = m.delay_derate(years);
            assert!(d > prev, "aging derate must grow with time");
            prev = d;
        }
        // 10-year degradation lands in the single-digit-percent range.
        let ten = m.delay_derate(10.0);
        assert!(ten > 0.03 && ten < 0.10, "10y derate {ten}");
    }

    #[test]
    fn corner_derates_are_ordered() {
        let conditions = paper_conditions();
        let derates: Vec<f64> = conditions.iter().map(|c| c.delay_derate()).collect();
        assert_eq!(derates[0], 1.0);
        // Every stressed corner is slower than Ideal, and the combined
        // corners are the slowest.
        for d in &derates[1..] {
            assert!(*d > 1.0);
        }
        assert!(derates[5] > derates[4]);
        assert!(derates[4] > derates[3]);
        assert!(derates[5] > derates[2]);
    }

    #[test]
    fn corner_names_match_paper() {
        let names: Vec<&str> = paper_conditions().iter().map(|c| c.name).collect();
        assert_eq!(names, PAPER_CONDITIONS.to_vec());
    }

    #[test]
    fn builders_apply_overrides() {
        let c = OperatingCondition::vt(0.05)
            .with_vt_sensitivity(1.0)
            .with_aging_model(AgingModel::new(0.0, 0.16));
        assert!((c.delay_derate() - 1.05).abs() < 1e-12);
        assert_eq!(c.to_string(), "VT-5%");
    }

    #[test]
    fn custom_corners_get_generic_names() {
        assert_eq!(OperatingCondition::vt(0.04).name, "VT");
        assert_eq!(OperatingCondition::aging(5.0).name, "Aging");
        assert_eq!(OperatingCondition::aging_vt(5.0, 0.04).name, "Aging&VT");
    }
}
