//! Timing-error modelling for MAC datapaths under PVTA variations.
//!
//! The READ paper evaluates timing errors with a commercial dynamic-timing
//! -analysis flow (PrimeTime STA on a synthesized Nangate-15nm MAC,
//! SiliconSmart LVF libraries at voltage/temperature corners, and an NBTI
//! aging model).  This crate rebuilds that flow as a behavioural model:
//!
//! * [`delay::DelayModel`] — a parametric delay model of the MAC datapath:
//!   a fixed multiplier stage plus an accumulator whose delay grows with the
//!   carry-propagation depth actually exercised by each cycle's operands.
//! * [`pvta::OperatingCondition`] — the voltage/temperature/aging corners
//!   used in the paper (Ideal, VT-3 %, VT-5 %, Aging-10y, and combinations),
//!   mapped to delay derating factors.
//! * [`dta::DynamicTimingAnalyzer`] — an [`accel_sim::CycleObserver`] that
//!   converts every simulated MAC cycle into a timing-error probability (or
//!   a sampled error event) by comparing the triggered path delay against
//!   the clock period chosen by static timing analysis.
//! * [`analysis`] — the unified [`TimingAnalysis`] interface: analytic,
//!   Monte-Carlo and per-PE-variation TER derivation from one triggered
//!   -depth histogram, at an [`OperatingCorner`] (condition + silicon
//!   [`Variation`]).  This is the seam the pipeline crate's `ErrorModel`
//!   stage builds on.
//! * [`ter`] — timing-error-rate estimation helpers and the paper's
//!   Eq. (1) conversion from MAC-level TER to activation-level BER.
//! * [`error_inject`] — bit-flip fault models for accumulator words.
//!
//! The model is calibrated so that the *mechanism* matches the paper: the
//! partial-sum sign flip is the critical input pattern, nominal conditions
//! are error-free, and increasing PVTA stress moves the deepest triggered
//! paths past the clock edge first.
//!
//! # Example
//!
//! ```
//! use accel_sim::{ArrayConfig, Dataflow, GemmProblem, Matrix, SimOptions};
//! use timing::{DelayModel, DynamicTimingAnalyzer, OperatingCondition};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let weights = Matrix::from_fn(64, 4, |r, c| ((r * 17 + c * 5) % 13) as i8 - 6);
//! let acts = Matrix::from_fn(64, 8, |r, c| ((r + 3 * c) % 7) as i8);
//! let problem = GemmProblem::new(weights, acts)?;
//!
//! let delay = DelayModel::nangate15_like();
//! let condition = OperatingCondition::aging_vt(10.0, 0.05);
//! let mut dta = DynamicTimingAnalyzer::new(delay, condition);
//! problem.simulate(
//!     &ArrayConfig::paper_default(),
//!     Dataflow::OutputStationary,
//!     &SimOptions::exhaustive(),
//!     &mut dta,
//! )?;
//! let report = dta.report();
//! assert!(report.ter >= 0.0 && report.ter <= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod delay;
pub mod dta;
pub mod error_inject;
pub mod math;
pub mod pvta;
pub mod ter;

pub use analysis::{
    AnalyticAnalysis, MonteCarloAnalysis, OperatingCorner, PeOffsets, TerEstimate, TimingAnalysis,
    Variation,
};
pub use delay::DelayModel;
pub use dta::{AnalysisMode, DepthHistogram, DynamicTimingAnalyzer, TimingReport};
pub use error_inject::{BitFlipModel, FaultInjector};
pub use pvta::{paper_conditions, AgingModel, OperatingCondition, PAPER_CONDITIONS};
pub use ter::{ber_from_ter, ter_for_target_ber, LayerTer, TerEstimator};
