//! Dynamic timing analysis: converting simulated MAC cycles into timing
//! errors.
//!
//! The analyzer implements [`accel_sim::CycleObserver`], so it can be plugged
//! directly into a [`accel_sim::GemmProblem`] simulation.  Two analysis modes
//! are provided:
//!
//! * [`AnalysisMode::Analytic`] (default) — every cycle contributes its
//!   closed-form error probability to the expected error count.  This gives
//!   smooth, low-variance TER estimates even at the 1e-7 level without
//!   having to simulate billions of cycles, mirroring how an LVF-based
//!   statistical STA/DTA flow reports failure probabilities.
//! * [`AnalysisMode::MonteCarlo`] — every cycle draws a Bernoulli sample, so
//!   discrete error events (and their locations) can be observed.

use accel_sim::{
    bitplane, ArrayConfig, CycleContext, CycleObserver, DepthWord, DepthWordSink, MacCycle,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::analysis::{OperatingCorner, PeOffsets, Variation};
use crate::delay::DelayModel;
use crate::pvta::OperatingCondition;

/// How the analyzer turns per-cycle error probabilities into a TER estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnalysisMode {
    /// Accumulate expected errors analytically (low-variance, deterministic).
    #[default]
    Analytic,
    /// Draw a Bernoulli sample per cycle with the given RNG seed.
    MonteCarlo {
        /// Seed of the per-analyzer random number generator.
        seed: u64,
    },
}

impl AnalysisMode {
    /// Placeholder seed for the analyzer's RNG in analytic mode, where the
    /// generator is constructed but never consumed.  Kept as a named
    /// constant so the "analytic mode has no sampling seed" decision lives
    /// in exactly one documented place.
    pub const ANALYTIC_PLACEHOLDER_SEED: u64 = 0;

    /// The sampling seed of this mode: `Some` for Monte-Carlo, `None` for
    /// analytic mode, which draws no random numbers.
    pub fn seed(&self) -> Option<u64> {
        match self {
            AnalysisMode::Analytic => None,
            AnalysisMode::MonteCarlo { seed } => Some(*seed),
        }
    }
}

/// Summary of a dynamic-timing-analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Corner name the analysis was run at.
    pub condition: &'static str,
    /// Total MAC cycles analyzed.
    pub total_cycles: u64,
    /// Expected (analytic) or observed (Monte-Carlo) number of timing errors.
    pub errors: f64,
    /// Timing error rate: `errors / total_cycles`.
    pub ter: f64,
    /// Number of cycles whose partial-sum sign flipped.
    pub sign_flips: u64,
    /// Sign-flip rate: `sign_flips / total_cycles`.
    pub sign_flip_rate: f64,
    /// Fraction of the expected errors contributed by sign-flip cycles.
    pub sign_flip_error_fraction: f64,
    /// Clock period used (normalized units).
    pub clock_period: f64,
    /// Number of completed output activations observed.
    pub outputs: u64,
}

impl TimingReport {
    /// Activation-level bit error rate implied by this TER for outputs that
    /// accumulate `macs_per_output` MAC operations (the paper's Eq. (1)).
    pub fn ber(&self, macs_per_output: usize) -> f64 {
        crate::ter::ber_from_ter(self.ter, macs_per_output)
    }
}

/// An [`accel_sim::CycleObserver`] that performs dynamic timing analysis.
///
/// # Example
///
/// ```
/// use accel_sim::{ArrayConfig, Dataflow, GemmProblem, Matrix, SimOptions};
/// use timing::{AnalysisMode, DelayModel, DynamicTimingAnalyzer, OperatingCondition};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Matrix::from_fn(32, 4, |r, c| ((r * 3 + c) % 9) as i8 - 4);
/// let a = Matrix::from_fn(32, 4, |r, c| ((r + c) % 5) as i8);
/// let problem = GemmProblem::new(w, a)?;
/// let mut dta = DynamicTimingAnalyzer::new(
///     DelayModel::nangate15_like(),
///     OperatingCondition::aging_vt(10.0, 0.05),
/// );
/// problem.simulate(
///     &ArrayConfig::paper_default(),
///     Dataflow::OutputStationary,
///     &SimOptions::exhaustive(),
///     &mut dta,
/// )?;
/// println!("TER = {:.3e}", dta.report().ter);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DynamicTimingAnalyzer {
    delay: DelayModel,
    condition: OperatingCondition,
    mode: AnalysisMode,
    rng: StdRng,
    /// Per-PE process offsets, when PE-level variation is enabled.
    pe_offsets: Option<(ArrayConfig, Vec<f64>)>,
    total_cycles: u64,
    expected_errors: f64,
    observed_errors: u64,
    sign_flips: u64,
    sign_flip_error_mass: f64,
    outputs: u64,
}

impl DynamicTimingAnalyzer {
    /// Creates an analytic-mode analyzer.
    pub fn new(delay: DelayModel, condition: OperatingCondition) -> Self {
        Self::with_mode(delay, condition, AnalysisMode::Analytic)
    }

    /// Creates an analyzer with an explicit analysis mode.
    pub fn with_mode(delay: DelayModel, condition: OperatingCondition, mode: AnalysisMode) -> Self {
        // Analytic mode never samples; its RNG only exists to keep the
        // struct uniform across modes (see ANALYTIC_PLACEHOLDER_SEED).
        let seed = mode
            .seed()
            .unwrap_or(AnalysisMode::ANALYTIC_PLACEHOLDER_SEED);
        DynamicTimingAnalyzer {
            delay,
            condition,
            mode,
            rng: StdRng::seed_from_u64(seed),
            pe_offsets: None,
            total_cycles: 0,
            expected_errors: 0.0,
            observed_errors: 0,
            sign_flips: 0,
            sign_flip_error_mass: 0.0,
            outputs: 0,
        }
    }

    /// Creates an analyzer for a full [`OperatingCorner`]: the corner's
    /// condition drives the delay derate and a [`Variation::PerPe`] corner
    /// enables per-PE process variation on the given array geometry.
    ///
    /// This is the cycle-level counterpart of the histogram-based
    /// [`crate::TimingAnalysis`] engines — both draw the same per-PE
    /// offsets ([`PeOffsets`]) for the same corner.
    pub fn at_corner(delay: DelayModel, corner: OperatingCorner, mode: AnalysisMode) -> Self {
        let analyzer = Self::with_mode(delay, corner.condition, mode);
        match corner.variation {
            Variation::Typical => analyzer,
            Variation::PerPe { rows, cols, seed } => {
                analyzer.with_process_variation(ArrayConfig::new(rows, cols), seed)
            }
        }
    }

    /// Enables per-PE process variation: each processing element of `array`
    /// receives a fixed Gaussian delay offset drawn with `seed`.
    ///
    /// When enabled, the per-cycle random component only models the cycle-to
    /// -cycle environmental noise; the process component is attributed to
    /// the specific PE that executed the cycle.
    pub fn with_process_variation(mut self, array: ArrayConfig, seed: u64) -> Self {
        let offsets = PeOffsets::draw(array.pe_count(), self.delay.sigma_process, seed);
        self.pe_offsets = Some((array, offsets.as_slice().to_vec()));
        self
    }

    fn process_offset(&self, ctx: &CycleContext) -> f64 {
        match &self.pe_offsets {
            Some((array, offsets)) => {
                let row = ctx.pixel % array.rows();
                let col = ctx.channel % array.cols();
                offsets[row * array.cols() + col]
            }
            None => 0.0,
        }
    }

    /// The operating condition this analyzer evaluates.
    pub fn condition(&self) -> &OperatingCondition {
        &self.condition
    }

    /// The delay model in use.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay
    }

    /// Number of MAC cycles analyzed so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Current timing-error-rate estimate.
    pub fn ter(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let errors = match self.mode {
            AnalysisMode::Analytic => self.expected_errors,
            AnalysisMode::MonteCarlo { .. } => self.observed_errors as f64,
        };
        errors / self.total_cycles as f64
    }

    /// Produces the analysis report.
    pub fn report(&self) -> TimingReport {
        let errors = match self.mode {
            AnalysisMode::Analytic => self.expected_errors,
            AnalysisMode::MonteCarlo { .. } => self.observed_errors as f64,
        };
        let total = self.total_cycles.max(1) as f64;
        TimingReport {
            condition: self.condition.name,
            total_cycles: self.total_cycles,
            errors,
            ter: if self.total_cycles == 0 {
                0.0
            } else {
                errors / total
            },
            sign_flips: self.sign_flips,
            sign_flip_rate: if self.total_cycles == 0 {
                0.0
            } else {
                self.sign_flips as f64 / total
            },
            sign_flip_error_fraction: if self.expected_errors > 0.0 {
                self.sign_flip_error_mass / self.expected_errors
            } else {
                0.0
            },
            clock_period: self.delay.clock_period(),
            outputs: self.outputs,
        }
    }

    /// Resets all counters, keeping the configuration.
    pub fn reset(&mut self) {
        self.total_cycles = 0;
        self.expected_errors = 0.0;
        self.observed_errors = 0;
        self.sign_flips = 0;
        self.sign_flip_error_mass = 0.0;
        self.outputs = 0;
    }
}

impl CycleObserver for DynamicTimingAnalyzer {
    fn on_cycle(&mut self, ctx: &CycleContext, cycle: &MacCycle) {
        self.total_cycles += 1;
        if cycle.sign_flip {
            self.sign_flips += 1;
        }
        let offset = self.process_offset(ctx);
        let p = self.delay.error_probability(cycle, &self.condition, offset);
        self.expected_errors += p;
        if cycle.sign_flip {
            self.sign_flip_error_mass += p;
        }
        if let AnalysisMode::MonteCarlo { .. } = self.mode {
            if p > 0.0 && self.rng.gen::<f64>() < p {
                self.observed_errors += 1;
            }
        }
    }

    fn on_output_done(&mut self, _ctx: &CycleContext, _final_psum: i32) {
        self.outputs += 1;
    }
}

/// Histogram of triggered path depths over a simulation.
///
/// Collecting the depth histogram once lets TERs be evaluated for *any*
/// operating condition without re-simulating: the error probability of a
/// cycle depends only on its triggered depth and the corner, so
/// `TER(corner) = Σ_d hist[d] · p(d, corner) / total`.  The figure benches
/// use this to sweep all six paper corners from a single simulation pass per
/// schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthHistogram {
    counts: Vec<u64>,
    sign_flips: u64,
    total: u64,
}

impl DepthHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        DepthHistogram {
            counts: vec![0; (crate::delay::MAX_DEPTH + 1) as usize],
            sign_flips: 0,
            total: 0,
        }
    }

    /// Total number of recorded cycles.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of recorded cycles whose partial sum flipped sign.
    pub fn sign_flips(&self) -> u64 {
        self.sign_flips
    }

    /// Sign-flip rate of the recorded cycles.
    pub fn sign_flip_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sign_flips as f64 / self.total as f64
        }
    }

    /// Cycle count per triggered depth (index = depth).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Reassembles a histogram from its observable parts — the inverse of
    /// ([`DepthHistogram::counts`], [`DepthHistogram::sign_flips`],
    /// [`DepthHistogram::total`]), used by wire decoders that ship
    /// histograms between worker processes.  `counts` may be shorter than
    /// the full depth range (missing tail depths count zero); entries beyond
    /// [`crate::delay::MAX_DEPTH`] are rejected.
    ///
    /// Returns `None` when `counts` is longer than the depth range or when
    /// the depth counts sum to more than `total` (a histogram records every
    /// cycle exactly once).
    pub fn from_parts(counts: &[u64], sign_flips: u64, total: u64) -> Option<Self> {
        let mut hist = DepthHistogram::new();
        if counts.len() > hist.counts.len() {
            return None;
        }
        let mut sum = 0u64;
        for (slot, &count) in hist.counts.iter_mut().zip(counts) {
            *slot = count;
            sum = sum.checked_add(count)?;
        }
        if sum != total || sign_flips > total {
            return None;
        }
        hist.sign_flips = sign_flips;
        hist.total = total;
        Some(hist)
    }

    /// Deterministic single-line text encoding of the histogram's
    /// observable parts: `total=<N> flips=<F> counts=<d>:<c>[,...]` with
    /// zero-count depths omitted — the same sparse rendering the pipeline's
    /// unit-result wire protocol ships between worker processes, also used
    /// to persist cached histograms in content-addressed artifact stores.
    ///
    /// [`DepthHistogram::from_wire`] is the exact inverse (the counts are
    /// integers, so the round trip is trivially lossless).
    pub fn to_wire(&self) -> String {
        let mut out = format!("total={} flips={} counts=", self.total, self.sign_flips);
        let mut first = true;
        for (depth, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{depth}:{count}"));
        }
        out
    }

    /// Decodes a [`DepthHistogram::to_wire`] line.  Returns `None` on any
    /// malformed input, including inconsistent totals and out-of-range
    /// depths (the same checks as [`DepthHistogram::from_parts`]).
    pub fn from_wire(line: &str) -> Option<DepthHistogram> {
        let mut tokens = line.split_whitespace();
        let total: u64 = tokens.next()?.strip_prefix("total=")?.parse().ok()?;
        let flips: u64 = tokens.next()?.strip_prefix("flips=")?.parse().ok()?;
        // An empty counts list renders as a bare "counts=" token, which
        // `split_whitespace` still yields (the line never ends in a space).
        let counts_value = tokens.next()?.strip_prefix("counts=")?;
        if tokens.next().is_some() {
            return None;
        }
        let mut dense: Vec<u64> = Vec::new();
        if !counts_value.is_empty() {
            for entry in counts_value.split(',') {
                let (depth, count) = entry.split_once(':')?;
                let depth: usize = depth.parse().ok()?;
                let count: u64 = count.parse().ok()?;
                if depth >= dense.len() {
                    dense.resize(depth + 1, 0);
                }
                dense[depth] = count;
            }
        }
        DepthHistogram::from_parts(&dense, flips, total)
    }

    /// Expected TER under the given delay model and operating condition.
    pub fn ter(&self, delay: &DelayModel, condition: &OperatingCondition) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let expected: f64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(depth, &count)| {
                count as f64 * delay.error_probability_for_depth(depth as u32, condition, 0.0)
            })
            .sum();
        expected / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DepthHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sign_flips += other.sign_flips;
        self.total += other.total;
    }

    /// Records one cycle's triggered depth and sign flip — the scalar
    /// reference path (also used by the [`CycleObserver::on_cycle`] impl).
    /// Depths beyond the histogram range clamp into the top bucket.
    pub fn record_depth(&mut self, depth: u32, sign_flip: bool) {
        self.total += 1;
        if sign_flip {
            self.sign_flips += 1;
        }
        let idx = (depth as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Packed-lane accumulation: tallies up to 64 lanes of one
    /// [`DepthWord`] at once.  Instead of 64 scalar bucket increments, each
    /// occupied depth is extracted as an equality mask over the packed depth
    /// counter and counted with `count_ones`; lanes at or beyond the top
    /// bucket clamp there, mirroring [`DepthHistogram::record_depth`].
    ///
    /// Because every tally is an integer count, accumulating words in any
    /// order produces exactly the counts of the equivalent
    /// [`DepthHistogram::record_depth`] calls — the byte-identity invariant
    /// the word-parallel simulation path relies on.
    pub fn record_word(&mut self, word: &DepthWord) {
        self.total += u64::from(word.lane_mask.count_ones());
        self.sign_flips += u64::from((word.sign_flips & word.lane_mask).count_ones());
        let top = self.counts.len() - 1;
        let mut remaining = word.lane_mask;
        let mut depth = 0usize;
        while remaining != 0 && depth < top {
            let at_depth = bitplane::lanes_eq(&word.depth_planes, depth as u64) & remaining;
            if at_depth != 0 {
                self.counts[depth] += u64::from(at_depth.count_ones());
                remaining &= !at_depth;
            }
            depth += 1;
        }
        // Everything at or beyond the top depth clamps into the last bucket
        // (for MAC cycles that is exactly depth == ACC_BITS, the sign-flip
        // worst case).
        self.counts[top] += u64::from(remaining.count_ones());
    }
}

impl Default for DepthHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleObserver for DepthHistogram {
    fn on_cycle(&mut self, _ctx: &CycleContext, cycle: &MacCycle) {
        let depth = if cycle.is_idle() {
            0
        } else {
            DelayModel::triggered_depth(cycle)
        };
        self.record_depth(depth, cycle.sign_flip);
    }

    // The histogram is a pure integer tally, so it opts into the
    // word-parallel simulation kernel; the accumulated counts are
    // byte-identical to the scalar path (see `record_word`).
    fn depth_word_sink(&mut self) -> Option<&mut dyn DepthWordSink> {
        Some(self)
    }
}

impl DepthWordSink for DepthHistogram {
    fn on_depth_word(&mut self, word: &DepthWord) {
        self.record_word(word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{ArrayConfig, Dataflow, GemmProblem, Matrix, SimOptions};

    fn demo_problem() -> GemmProblem {
        let w = Matrix::from_fn(64, 4, |r, c| (((r * 13 + c * 7) % 17) as i8) - 8);
        let a = Matrix::from_fn(64, 16, |r, c| ((r * 3 + c) % 6) as i8);
        GemmProblem::new(w, a).unwrap()
    }

    fn run(condition: OperatingCondition) -> TimingReport {
        let mut dta = DynamicTimingAnalyzer::new(DelayModel::nangate15_like(), condition);
        demo_problem()
            .simulate(
                &ArrayConfig::paper_default(),
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut dta,
            )
            .unwrap();
        dta.report()
    }

    #[test]
    fn stress_increases_ter() {
        let ideal = run(OperatingCondition::ideal());
        let worst = run(OperatingCondition::aging_vt(10.0, 0.05));
        assert_eq!(ideal.total_cycles, worst.total_cycles);
        assert!(ideal.ter < 1e-6);
        assert!(worst.ter > ideal.ter * 10.0);
        assert!(worst.ter < 0.5);
    }

    #[test]
    fn sign_flips_dominate_errors_under_stress() {
        let worst = run(OperatingCondition::aging_vt(10.0, 0.05));
        assert!(worst.sign_flips > 0);
        assert!(
            worst.sign_flip_error_fraction > 0.5,
            "sign flips should contribute most of the error mass, got {}",
            worst.sign_flip_error_fraction
        );
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_order_of_magnitude() {
        // Use an extreme corner so the Monte-Carlo run sees enough events.
        let condition = OperatingCondition::aging_vt(10.0, 0.10);
        let problem = demo_problem();
        let mut analytic = DynamicTimingAnalyzer::new(DelayModel::nangate15_like(), condition);
        let mut sampled = DynamicTimingAnalyzer::with_mode(
            DelayModel::nangate15_like(),
            condition,
            AnalysisMode::MonteCarlo { seed: 11 },
        );
        let array = ArrayConfig::paper_default();
        problem
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut analytic,
            )
            .unwrap();
        problem
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut sampled,
            )
            .unwrap();
        let a = analytic.report().ter;
        let s = sampled.report().ter;
        assert!(a > 0.0);
        // Loose agreement: the Monte-Carlo estimate is within 5x of the
        // analytic expectation (small-sample noise).
        assert!(s < a * 5.0 + 1e-3);
        assert!(s > a / 5.0 - 1e-3 || s == 0.0);
    }

    #[test]
    fn process_variation_changes_estimate_slightly() {
        let condition = OperatingCondition::aging_vt(10.0, 0.05);
        let problem = demo_problem();
        let array = ArrayConfig::paper_default();
        let mut plain = DynamicTimingAnalyzer::new(DelayModel::nangate15_like(), condition);
        let mut with_pv = DynamicTimingAnalyzer::new(DelayModel::nangate15_like(), condition)
            .with_process_variation(array, 3);
        problem
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut plain,
            )
            .unwrap();
        problem
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut with_pv,
            )
            .unwrap();
        let p = plain.report().ter;
        let v = with_pv.report().ter;
        assert!(p > 0.0 && v > 0.0);
        assert!(v < p * 100.0 && v > p / 100.0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut dta = DynamicTimingAnalyzer::new(
            DelayModel::nangate15_like(),
            OperatingCondition::aging_vt(10.0, 0.05),
        );
        demo_problem()
            .simulate(
                &ArrayConfig::paper_default(),
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut dta,
            )
            .unwrap();
        assert!(dta.total_cycles() > 0);
        dta.reset();
        assert_eq!(dta.total_cycles(), 0);
        assert_eq!(dta.ter(), 0.0);
        assert_eq!(dta.report().outputs, 0);
    }

    #[test]
    fn empty_report_is_well_formed() {
        let dta =
            DynamicTimingAnalyzer::new(DelayModel::nangate15_like(), OperatingCondition::ideal());
        let r = dta.report();
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.ter, 0.0);
        assert_eq!(r.sign_flip_rate, 0.0);
    }

    #[test]
    fn report_ber_uses_equation_one() {
        let worst = run(OperatingCondition::aging_vt(10.0, 0.05));
        let ber = worst.ber(1000);
        assert!(ber >= worst.ter);
        assert!(ber <= 1.0);
    }

    #[test]
    fn depth_histogram_matches_analyzer_ter() {
        let problem = demo_problem();
        let array = ArrayConfig::paper_default();
        let delay = DelayModel::nangate15_like();
        let condition = OperatingCondition::aging_vt(10.0, 0.05);
        let mut hist = DepthHistogram::new();
        let mut dta = DynamicTimingAnalyzer::new(delay, condition);
        problem
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut hist,
            )
            .unwrap();
        problem
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut dta,
            )
            .unwrap();
        let from_hist = hist.ter(&delay, &condition);
        let from_dta = dta.report().ter;
        assert!(
            (from_hist - from_dta).abs() <= from_dta * 1e-9 + 1e-15,
            "{from_hist} vs {from_dta}"
        );
        assert_eq!(hist.total(), dta.report().total_cycles);
        assert_eq!(hist.sign_flips(), dta.report().sign_flips);
    }

    #[test]
    fn depth_histogram_merge_accumulates() {
        let mut a = DepthHistogram::new();
        let mut b = DepthHistogram::new();
        let problem = demo_problem();
        let array = ArrayConfig::paper_default();
        problem
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::sampled(4, 1),
                &mut a,
            )
            .unwrap();
        problem
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::sampled(4, 2),
                &mut b,
            )
            .unwrap();
        let total = a.total() + b.total();
        a.merge(&b);
        assert_eq!(a.total(), total);
        assert!(a.sign_flip_rate() >= 0.0);
        assert_eq!(
            DepthHistogram::default()
                .ter(&DelayModel::nangate15_like(), &OperatingCondition::ideal()),
            0.0
        );
    }

    /// The histogram accumulated through the word-parallel kernel is
    /// byte-identical to the scalar per-cycle path, for both dataflows (a
    /// `ScalarPath` wrapper forces the scalar route on the same type).
    #[test]
    fn packed_histogram_is_byte_identical_to_scalar_path() {
        use accel_sim::ScalarPath;
        let problem = {
            // 70 pixels: one full 64-lane word plus a 6-lane remainder.
            let w = Matrix::from_fn(48, 5, |r, c| (((r * 13 + c * 7) % 17) as i8) - 8);
            let a = Matrix::from_fn(48, 70, |r, c| (((r * 3 + c) % 9) as i8) - 2);
            GemmProblem::new(w, a).unwrap()
        };
        let array = ArrayConfig::paper_default();
        for dataflow in [Dataflow::OutputStationary, Dataflow::WeightStationary] {
            for options in [SimOptions::exhaustive(), SimOptions::sampled(33, 3)] {
                let mut packed = DepthHistogram::new();
                let mut scalar = ScalarPath(DepthHistogram::new());
                let fast = problem
                    .simulate(&array, dataflow, &options, &mut packed)
                    .unwrap();
                let slow = problem
                    .simulate(&array, dataflow, &options, &mut scalar)
                    .unwrap();
                assert_eq!(packed, scalar.0, "{dataflow:?} {options:?}");
                assert_eq!(packed.to_wire(), scalar.0.to_wire());
                assert_eq!(fast.outputs, slow.outputs);
                assert_eq!(fast.total_cycles, slow.total_cycles);
                assert!(packed.total() > 0);
            }
        }
    }

    /// `record_word` equals per-lane `record_depth` calls, including the
    /// top-bucket clamp for out-of-range depths.
    #[test]
    fn packed_record_word_equals_scalar_record_depth() {
        use accel_sim::DepthWord;
        let mut packed = DepthHistogram::new();
        let mut scalar = DepthHistogram::new();
        // 31 exceeds MAX_DEPTH: both paths must clamp into the top bucket.
        let depths: Vec<u32> = (0..40).map(|l| [0u32, 3, 24, 31, 7][l % 5]).collect();
        let mut depth_planes = [0u64; accel_sim::bitplane::DEPTH_PLANES];
        let mut flips = 0u64;
        for (lane, &d) in depths.iter().enumerate() {
            for (k, plane) in depth_planes.iter_mut().enumerate() {
                *plane |= u64::from((d >> k) & 1) << lane;
            }
            if lane % 3 == 0 {
                flips |= 1 << lane;
            }
        }
        let lane_mask = accel_sim::bitplane::lane_mask(depths.len());
        packed.record_word(&DepthWord {
            depth_planes,
            sign_flips: flips,
            lane_mask,
        });
        for (lane, &d) in depths.iter().enumerate() {
            scalar.record_depth(d, lane % 3 == 0);
        }
        assert_eq!(packed, scalar);
        assert_eq!(packed.total(), 40);
    }

    #[test]
    fn depth_histogram_wire_round_trips_exactly() {
        let hist = DepthHistogram::from_parts(&[10, 0, 3, 0, 2], 4, 15).unwrap();
        let wire = hist.to_wire();
        assert_eq!(wire, "total=15 flips=4 counts=0:10,2:3,4:2");
        assert_eq!(DepthHistogram::from_wire(&wire), Some(hist));
        // The empty histogram round-trips through the bare counts token.
        let empty = DepthHistogram::new();
        assert_eq!(empty.to_wire(), "total=0 flips=0 counts=");
        assert_eq!(DepthHistogram::from_wire(&empty.to_wire()), Some(empty));
    }

    #[test]
    fn malformed_wire_histograms_are_rejected() {
        for bad in [
            "",
            "total=1 flips=0",                    // missing counts
            "total=1 flips=0 counts=0:2",         // counts exceed total
            "total=2 flips=3 counts=0:2",         // flips exceed total
            "total=x flips=0 counts=",            // bad total
            "total=1 flips=0 counts=0:1 extra=1", // trailing token
            "total=1 flips=0 counts=99999:1",     // depth out of range
            "flips=0 total=1 counts=",            // wrong field order
        ] {
            assert!(
                DepthHistogram::from_wire(bad).is_none(),
                "{bad:?} should not decode"
            );
        }
    }
}
