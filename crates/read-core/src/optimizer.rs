//! The READ optimization pipeline: (optionally) cluster the output channels,
//! then reorder the input channels of every cluster, and emit a layer
//! schedule that drives the accelerator.

use accel_sim::{ColumnGroup, ComputeSchedule, Matrix};

use crate::cluster::{BalancedKMeans, DistanceMetric};
use crate::error::ReadError;
use crate::kernels::{sign_flips_for_order_with, SignFlipScratch};
use crate::lut::AddressLut;
use crate::reorder::{sort_input_channels, SortCriterion};

/// How output channels are grouped before reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ClusteringMode {
    /// Keep the baseline consecutive segmentation of output channels
    /// (the paper's plain "Reorder" configuration).
    Direct,
    /// Cluster output channels by weight-sign similarity before segmenting
    /// (the paper's "Cluster-then-Reorder" configuration, its best result).
    #[default]
    ClusterThenReorder,
}

impl ClusteringMode {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ClusteringMode::Direct => "reorder",
            ClusteringMode::ClusterThenReorder => "cluster-then-reorder",
        }
    }
}

/// Configuration of the READ optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadConfig {
    /// Input-channel sorting criterion (Algorithm 1).
    pub criterion: SortCriterion,
    /// Output-channel grouping mode.
    pub clustering: ClusteringMode,
    /// Distance metric used when clustering.
    pub metric: DistanceMetric,
    /// Iteration cap for the balanced k-means clustering.
    pub max_cluster_iterations: usize,
    /// Seed for clustering initialisation (and the `Random` criterion).
    pub seed: u64,
}

impl Default for ReadConfig {
    fn default() -> Self {
        ReadConfig {
            criterion: SortCriterion::SignFirst,
            clustering: ClusteringMode::ClusterThenReorder,
            metric: DistanceMetric::SignManhattan,
            max_cluster_iterations: 30,
            seed: 0x5EED,
        }
    }
}

/// One cluster of a [`LayerSchedule`]: the output channels it contains and
/// the shared input-channel order used to compute them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClusterSchedule {
    /// Output-channel indices in this cluster.
    pub columns: Vec<usize>,
    /// Input-channel (reduction-row) visiting order shared by the cluster.
    pub order: Vec<usize>,
}

/// The complete computing schedule of one layer produced by READ.
///
/// A schedule never changes the layer's numerical result — it only fixes the
/// grouping of output channels and the order in which the reduction is
/// accumulated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerSchedule {
    clusters: Vec<ClusterSchedule>,
    reduction_len: usize,
    num_channels: usize,
}

impl LayerSchedule {
    /// The baseline schedule of an unmodified accelerator: consecutive
    /// groups of `cols_per_group` output channels, natural reduction order.
    pub fn baseline(reduction_len: usize, num_channels: usize, cols_per_group: usize) -> Self {
        let cols_per_group = cols_per_group.max(1);
        let clusters = (0..num_channels)
            .collect::<Vec<_>>()
            .chunks(cols_per_group)
            .map(|chunk| ClusterSchedule {
                columns: chunk.to_vec(),
                order: (0..reduction_len).collect(),
            })
            .collect();
        LayerSchedule {
            clusters,
            reduction_len,
            num_channels,
        }
    }

    /// Creates a schedule from explicit clusters.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::InvalidOrder`] if the clusters do not form a
    /// consistent schedule (wrong order lengths, duplicate or missing
    /// channels).
    pub fn new(
        clusters: Vec<ClusterSchedule>,
        reduction_len: usize,
        num_channels: usize,
    ) -> Result<Self, ReadError> {
        let schedule = LayerSchedule {
            clusters,
            reduction_len,
            num_channels,
        };
        schedule
            .to_compute_schedule()
            .validate(reduction_len, num_channels)
            .map_err(|e| ReadError::InvalidOrder {
                reason: e.to_string(),
            })?;
        Ok(schedule)
    }

    /// The clusters of this schedule.
    pub fn clusters(&self) -> &[ClusterSchedule] {
        &self.clusters
    }

    /// Length of the reduction dimension this schedule was built for.
    pub fn reduction_len(&self) -> usize {
        self.reduction_len
    }

    /// Number of output channels this schedule covers.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// The order in which output channels are produced (concatenation of the
    /// cluster column lists) — the order the next layer must account for.
    pub fn output_channel_order(&self) -> Vec<usize> {
        self.clusters
            .iter()
            .flat_map(|c| c.columns.iter().copied())
            .collect()
    }

    /// Converts the schedule into the simulator's [`ComputeSchedule`].
    pub fn to_compute_schedule(&self) -> ComputeSchedule {
        ComputeSchedule::new(
            self.clusters
                .iter()
                .map(|c| ColumnGroup {
                    columns: c.columns.clone(),
                    row_order: c.order.clone(),
                })
                .collect(),
        )
    }

    /// Builds the IFMAP address LUT realizing this schedule in hardware.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::EmptyWeights`] for a schedule without clusters.
    pub fn lut(&self) -> Result<AddressLut, ReadError> {
        AddressLut::from_orders(self.clusters.iter().map(|c| c.order.clone()).collect())
    }

    /// Total partial-sum sign flips of this schedule on the given weight
    /// matrix (unit activations unless `activations` is provided) — the
    /// optimizer's objective.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::InvalidOrder`] if the schedule does not match
    /// the matrix dimensions.
    pub fn total_sign_flips(
        &self,
        weights: &Matrix<i8>,
        activations: Option<&[i8]>,
    ) -> Result<u64, ReadError> {
        // One scratch serves every cluster: after the first cluster the
        // scoring loop is allocation-free (see tests/alloc_regression.rs).
        let mut scratch = SignFlipScratch::new();
        let mut total = 0;
        for cluster in &self.clusters {
            total += sign_flips_for_order_with(
                &mut scratch,
                weights,
                &cluster.columns,
                &cluster.order,
                activations,
            )?;
        }
        Ok(total)
    }
}

/// The READ optimizer: produces a [`LayerSchedule`] for a weight matrix.
///
/// # Example
///
/// ```
/// use accel_sim::Matrix;
/// use read_core::{ReadConfig, ReadOptimizer};
///
/// # fn main() -> Result<(), read_core::ReadError> {
/// let weights = Matrix::from_fn(32, 8, |r, c| (((r * 5 + c * 11) % 17) as i8) - 8);
/// let schedule = ReadOptimizer::new(ReadConfig::default()).optimize(&weights, 4)?;
/// let baseline = read_core::LayerSchedule::baseline(32, 8, 4);
/// assert!(
///     schedule.total_sign_flips(&weights, None)? <= baseline.total_sign_flips(&weights, None)?
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReadOptimizer {
    config: ReadConfig,
}

impl ReadOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: ReadConfig) -> Self {
        ReadOptimizer { config }
    }

    /// The optimizer's configuration.
    pub fn config(&self) -> &ReadConfig {
        &self.config
    }

    /// Optimizes the computing schedule of a `C x K` weight matrix for an
    /// array that processes `cols_per_group` output channels simultaneously
    /// (the array column count `Ac`).
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::EmptyWeights`] for an empty matrix and
    /// [`ReadError::InvalidGrouping`] when `cols_per_group` is zero.
    pub fn optimize(
        &self,
        weights: &Matrix<i8>,
        cols_per_group: usize,
    ) -> Result<LayerSchedule, ReadError> {
        if weights.is_empty() {
            return Err(ReadError::EmptyWeights);
        }
        if cols_per_group == 0 {
            return Err(ReadError::InvalidGrouping {
                reason: "columns per group must be non-zero".into(),
            });
        }
        let groups: Vec<Vec<usize>> = match self.config.clustering {
            ClusteringMode::Direct => (0..weights.cols())
                .collect::<Vec<_>>()
                .chunks(cols_per_group)
                .map(<[usize]>::to_vec)
                .collect(),
            ClusteringMode::ClusterThenReorder => {
                BalancedKMeans::new(cols_per_group, self.config.metric)
                    .with_max_iterations(self.config.max_cluster_iterations)
                    .with_seed(self.config.seed)
                    .run(weights)?
                    .clusters
            }
        };
        let clusters = groups
            .into_iter()
            .map(|columns| {
                let order = sort_input_channels(weights, &columns, self.config.criterion)?;
                Ok(ClusterSchedule { columns, order })
            })
            .collect::<Result<Vec<_>, ReadError>>()?;
        Ok(LayerSchedule {
            clusters,
            reduction_len: weights.rows(),
            num_channels: weights.cols(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{ArrayConfig, Dataflow, GemmProblem, NullObserver, SimOptions};

    fn demo_weights(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r as u64 * 31 + c as u64 * 17 + seed)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .rotate_left(13);
            ((x % 23) as i8) - 11
        })
    }

    #[test]
    fn baseline_schedule_is_identity() {
        let s = LayerSchedule::baseline(16, 10, 4);
        assert_eq!(s.clusters().len(), 3);
        assert_eq!(s.output_channel_order(), (0..10).collect::<Vec<_>>());
        assert_eq!(s.clusters()[0].order, (0..16).collect::<Vec<_>>());
        assert!(s.to_compute_schedule().validate(16, 10).is_ok());
    }

    #[test]
    fn optimizer_reduces_sign_flips_in_both_modes() {
        let w = demo_weights(96, 16, 1);
        let baseline = LayerSchedule::baseline(96, 16, 4);
        let base_flips = baseline.total_sign_flips(&w, None).unwrap();
        for clustering in [ClusteringMode::Direct, ClusteringMode::ClusterThenReorder] {
            let schedule = ReadOptimizer::new(ReadConfig {
                clustering,
                ..ReadConfig::default()
            })
            .optimize(&w, 4)
            .unwrap();
            let flips = schedule.total_sign_flips(&w, None).unwrap();
            assert!(
                flips < base_flips,
                "{}: {flips} >= {base_flips}",
                clustering.name()
            );
        }
    }

    #[test]
    fn cluster_then_reorder_is_at_least_as_good_as_direct() {
        // Averaged over several matrices the clustered variant must not be
        // worse; on sign-structured weights it is strictly better.
        let mut direct_total = 0u64;
        let mut clustered_total = 0u64;
        for seed in 0..5 {
            let w = demo_weights(64, 32, seed);
            let direct = ReadOptimizer::new(ReadConfig {
                clustering: ClusteringMode::Direct,
                ..ReadConfig::default()
            })
            .optimize(&w, 8)
            .unwrap();
            let clustered = ReadOptimizer::new(ReadConfig {
                clustering: ClusteringMode::ClusterThenReorder,
                ..ReadConfig::default()
            })
            .optimize(&w, 8)
            .unwrap();
            direct_total += direct.total_sign_flips(&w, None).unwrap();
            clustered_total += clustered.total_sign_flips(&w, None).unwrap();
        }
        assert!(
            clustered_total <= direct_total + direct_total / 10,
            "clustered {clustered_total} vs direct {direct_total}"
        );
    }

    #[test]
    fn schedule_preserves_gemm_result() {
        let w = demo_weights(48, 8, 3);
        let a = Matrix::from_fn(48, 10, |r, c| ((r * 3 + c) % 6) as i8);
        let problem = GemmProblem::new(w.clone(), a).unwrap();
        let schedule = ReadOptimizer::new(ReadConfig::default())
            .optimize(&w, 4)
            .unwrap();
        let mut obs = NullObserver;
        let optimized = problem
            .simulate_with_schedule(
                &ArrayConfig::new(4, 4),
                Dataflow::OutputStationary,
                &schedule.to_compute_schedule(),
                &SimOptions::exhaustive(),
                &mut obs,
            )
            .unwrap();
        assert_eq!(optimized.outputs, problem.reference_output().unwrap());
    }

    #[test]
    fn schedule_lut_matches_cluster_orders() {
        let w = demo_weights(32, 8, 5);
        let schedule = ReadOptimizer::new(ReadConfig::default())
            .optimize(&w, 4)
            .unwrap();
        let lut = schedule.lut().unwrap();
        assert_eq!(lut.num_clusters(), schedule.clusters().len());
        for (ci, cluster) in schedule.clusters().iter().enumerate() {
            assert_eq!(lut.order(ci).unwrap(), cluster.order.as_slice());
        }
    }

    #[test]
    fn explicit_schedule_validation() {
        let good = LayerSchedule::new(
            vec![
                ClusterSchedule {
                    columns: vec![0, 1],
                    order: vec![1, 0],
                },
                ClusterSchedule {
                    columns: vec![2],
                    order: vec![0, 1],
                },
            ],
            2,
            3,
        );
        assert!(good.is_ok());
        let bad = LayerSchedule::new(
            vec![ClusterSchedule {
                columns: vec![0, 0],
                order: vec![0, 1],
            }],
            2,
            1,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn optimizer_rejects_invalid_inputs() {
        let w = demo_weights(8, 4, 0);
        let opt = ReadOptimizer::new(ReadConfig::default());
        assert!(opt.optimize(&w, 0).is_err());
        assert!(opt.optimize(&Matrix::<i8>::zeros(0, 0), 4).is_err());
    }

    #[test]
    fn config_accessors_and_names() {
        let opt = ReadOptimizer::default();
        assert_eq!(opt.config().clustering, ClusteringMode::ClusterThenReorder);
        assert_eq!(ClusteringMode::Direct.name(), "reorder");
        assert_eq!(
            ClusteringMode::ClusterThenReorder.name(),
            "cluster-then-reorder"
        );
    }

    #[test]
    fn larger_groups_reduce_less() {
        // With more columns per group a single shared order must compromise
        // across more channels, so the residual sign flips grow (Fig. 7).
        let w = demo_weights(128, 32, 9);
        let flips_per_group_size: Vec<u64> = [4usize, 16, 32]
            .iter()
            .map(|&g| {
                ReadOptimizer::new(ReadConfig {
                    clustering: ClusteringMode::Direct,
                    ..ReadConfig::default()
                })
                .optimize(&w, g)
                .unwrap()
                .total_sign_flips(&w, None)
                .unwrap()
            })
            .collect();
        assert!(flips_per_group_size[0] <= flips_per_group_size[1]);
        assert!(flips_per_group_size[1] <= flips_per_group_size[2]);
    }
}
