//! Cross-layer schedule propagation (Section IV-D).
//!
//! Output-channel clustering changes the order in which a layer's output
//! activations are produced, which the *next* layer must account for when
//! fetching its input activations.  Following the cross-layer reordering of
//! Pool & Yu ("Channel permutations for N:M sparsity"), starting from the
//! second layer the memory fetch order of each layer is determined by two
//! orders: the current layer's own input-channel order (applied along its
//! `C` dimension) and the previous layer's output-channel order (applied
//! along its `K` dimension).
//!
//! [`NetworkScheduler`] composes these orders across a chain of layers so
//! the whole network can be executed with reordered weights while keeping
//! its results bit-identical.

use accel_sim::Matrix;

use crate::error::ReadError;
use crate::metrics::validate_order;
use crate::optimizer::{LayerSchedule, ReadOptimizer};

/// Expands an input-*channel* order into a reduction-*row* order for a layer
/// whose filters have `taps_per_channel = Fx * Fy` taps: channel `c` owns
/// the consecutive row block `c * taps .. (c + 1) * taps`, which moves as a
/// unit.
///
/// # Errors
///
/// Returns [`ReadError::InvalidOrder`] if `channel_order` is not a
/// permutation or `taps_per_channel` is zero.
///
/// # Example
///
/// ```
/// use read_core::expand_channel_order_to_rows;
///
/// let rows = expand_channel_order_to_rows(&[2, 0, 1], 2)?;
/// assert_eq!(rows, vec![4, 5, 0, 1, 2, 3]);
/// # Ok::<(), read_core::ReadError>(())
/// ```
pub fn expand_channel_order_to_rows(
    channel_order: &[usize],
    taps_per_channel: usize,
) -> Result<Vec<usize>, ReadError> {
    if taps_per_channel == 0 {
        return Err(ReadError::InvalidOrder {
            reason: "taps per channel must be non-zero".into(),
        });
    }
    validate_order(channel_order, channel_order.len())?;
    let mut rows = Vec::with_capacity(channel_order.len() * taps_per_channel);
    for &c in channel_order {
        for t in 0..taps_per_channel {
            rows.push(c * taps_per_channel + t);
        }
    }
    Ok(rows)
}

/// Applies a previous layer's output-channel order to the current layer's
/// weight matrix: input-channel block `i` of the result corresponds to the
/// previous layer's output channel `prev_output_order[i]`.
///
/// After this permutation the current layer can consume the previous layer's
/// activations exactly in the order they are produced, without any
/// additional buffering.
///
/// # Errors
///
/// Returns [`ReadError::InvalidOrder`] when the order does not match the
/// matrix's channel count or is not a permutation.
pub fn permute_input_channels(
    weights: &Matrix<i8>,
    prev_output_order: &[usize],
    taps_per_channel: usize,
) -> Result<Matrix<i8>, ReadError> {
    if taps_per_channel == 0 || !weights.rows().is_multiple_of(taps_per_channel) {
        return Err(ReadError::InvalidOrder {
            reason: format!(
                "reduction length {} is not a multiple of taps {}",
                weights.rows(),
                taps_per_channel
            ),
        });
    }
    let channels = weights.rows() / taps_per_channel;
    if prev_output_order.len() != channels {
        return Err(ReadError::InvalidOrder {
            reason: format!(
                "previous-layer order length {} != input channels {channels}",
                prev_output_order.len()
            ),
        });
    }
    let rows = expand_channel_order_to_rows(prev_output_order, taps_per_channel)?;
    weights
        .permute_rows(&rows)
        .map_err(|e| ReadError::InvalidOrder {
            reason: e.to_string(),
        })
}

/// Per-layer inputs to the network scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDescriptor {
    /// Layer name (for reports).
    pub name: String,
    /// Weight matrix in `(C * Fx * Fy) x K` form.
    pub weights: Matrix<i8>,
    /// Filter taps per input channel (`Fx * Fy`).
    pub taps_per_channel: usize,
}

/// A scheduled layer: the (possibly input-permuted) weight matrix and the
/// READ schedule computed for it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledLayer {
    /// Layer name.
    pub name: String,
    /// Weight matrix after accounting for the previous layer's output order.
    pub weights: Matrix<i8>,
    /// The READ schedule for this layer.
    pub schedule: LayerSchedule,
}

/// Propagates READ schedules across a chain of layers.
///
/// # Example
///
/// ```
/// use accel_sim::Matrix;
/// use read_core::{NetworkScheduler, ReadConfig, ReadOptimizer};
/// use read_core::schedule::LayerDescriptor;
///
/// # fn main() -> Result<(), read_core::ReadError> {
/// let layers = vec![
///     LayerDescriptor {
///         name: "conv1".into(),
///         weights: Matrix::from_fn(27, 16, |r, c| ((r * 3 + c) % 7) as i8 - 3),
///         taps_per_channel: 9,
///     },
///     LayerDescriptor {
///         name: "conv2".into(),
///         weights: Matrix::from_fn(144, 8, |r, c| ((r + c * 5) % 9) as i8 - 4),
///         taps_per_channel: 9,
///     },
/// ];
/// let scheduler = NetworkScheduler::new(ReadOptimizer::new(ReadConfig::default()), 4);
/// let scheduled = scheduler.schedule_network(&layers)?;
/// assert_eq!(scheduled.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetworkScheduler {
    optimizer: ReadOptimizer,
    cols_per_group: usize,
}

impl NetworkScheduler {
    /// Creates a scheduler that optimizes every layer for an array with
    /// `cols_per_group` columns.
    pub fn new(optimizer: ReadOptimizer, cols_per_group: usize) -> Self {
        NetworkScheduler {
            optimizer,
            cols_per_group,
        }
    }

    /// Schedules a chain of layers, threading each layer's output-channel
    /// order into the next layer's input-channel permutation.
    ///
    /// # Errors
    ///
    /// Propagates optimizer errors and inconsistencies between consecutive
    /// layer shapes (a next layer whose input-channel count does not match
    /// the previous layer's output-channel count is rejected).
    pub fn schedule_network(
        &self,
        layers: &[LayerDescriptor],
    ) -> Result<Vec<ScheduledLayer>, ReadError> {
        let mut scheduled = Vec::with_capacity(layers.len());
        let mut prev_output_order: Option<Vec<usize>> = None;
        for layer in layers {
            let weights = match &prev_output_order {
                Some(order)
                    if order.len() == layer.weights.rows() / layer.taps_per_channel.max(1) =>
                {
                    permute_input_channels(&layer.weights, order, layer.taps_per_channel)?
                }
                Some(_) | None => layer.weights.clone(),
            };
            let schedule = self.optimizer.optimize(&weights, self.cols_per_group)?;
            prev_output_order = Some(schedule.output_channel_order());
            scheduled.push(ScheduledLayer {
                name: layer.name.clone(),
                weights,
                schedule,
            });
        }
        Ok(scheduled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::ReadConfig;

    #[test]
    fn expand_blocks_move_as_units() {
        let rows = expand_channel_order_to_rows(&[1, 0], 3).unwrap();
        assert_eq!(rows, vec![3, 4, 5, 0, 1, 2]);
        assert!(expand_channel_order_to_rows(&[0, 0], 3).is_err());
        assert!(expand_channel_order_to_rows(&[0, 1], 0).is_err());
    }

    #[test]
    fn permute_input_channels_round_trip() {
        let w = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as i8);
        let order = vec![2, 0, 1];
        let permuted = permute_input_channels(&w, &order, 2).unwrap();
        // Channel block 2 (rows 4,5) moves to the front.
        assert_eq!(permuted.row(0), w.row(4));
        assert_eq!(permuted.row(1), w.row(5));
        // Applying the inverse order restores the matrix.
        let mut inverse = vec![0; 3];
        for (i, &o) in order.iter().enumerate() {
            inverse[o] = i;
        }
        let restored = permute_input_channels(&permuted, &inverse, 2).unwrap();
        assert_eq!(restored, w);
    }

    #[test]
    fn permute_input_channels_validates_shapes() {
        let w = Matrix::from_fn(6, 2, |r, c| (r + c) as i8);
        assert!(permute_input_channels(&w, &[0, 1], 4).is_err());
        assert!(permute_input_channels(&w, &[0, 1], 2).is_err());
        assert!(permute_input_channels(&w, &[0, 1, 1], 2).is_err());
    }

    #[test]
    fn network_scheduler_threads_orders() {
        // Layer 1: 4 input channels (1x1), 6 output channels.
        // Layer 2: 6 input channels (1x1), 4 output channels.
        let layers = vec![
            LayerDescriptor {
                name: "l1".into(),
                weights: Matrix::from_fn(4, 6, |r, c| ((r * 5 + c * 3) % 9) as i8 - 4),
                taps_per_channel: 1,
            },
            LayerDescriptor {
                name: "l2".into(),
                weights: Matrix::from_fn(6, 4, |r, c| ((r * 7 + c) % 9) as i8 - 4),
                taps_per_channel: 1,
            },
        ];
        let scheduler = NetworkScheduler::new(ReadOptimizer::new(ReadConfig::default()), 2);
        let scheduled = scheduler.schedule_network(&layers).unwrap();
        assert_eq!(scheduled.len(), 2);
        // Layer 2's weights are the original rows permuted by layer 1's
        // output order.
        let order = scheduled[0].schedule.output_channel_order();
        for (i, &ch) in order.iter().enumerate() {
            assert_eq!(scheduled[1].weights.row(i), layers[1].weights.row(ch));
        }
    }

    #[test]
    fn mismatched_chain_falls_back_to_unpermuted_weights() {
        // Layer 2 has an input-channel count that does not match layer 1's
        // output count (e.g. a pooling layer in between changed nothing, but
        // a channel-count mismatch means the order cannot be applied); the
        // scheduler must still succeed and use the original weights.
        let layers = vec![
            LayerDescriptor {
                name: "l1".into(),
                weights: Matrix::from_fn(4, 6, |r, c| ((r + c) % 5) as i8 - 2),
                taps_per_channel: 1,
            },
            LayerDescriptor {
                name: "l2".into(),
                weights: Matrix::from_fn(8, 4, |r, c| ((r + c) % 5) as i8 - 2),
                taps_per_channel: 1,
            },
        ];
        let scheduler = NetworkScheduler::new(ReadOptimizer::new(ReadConfig::default()), 2);
        let scheduled = scheduler.schedule_network(&layers).unwrap();
        assert_eq!(scheduled[1].weights, layers[1].weights);
    }
}
