//! Output-channel clustering (Problem 2 of the paper).
//!
//! Before segmenting the weight matrix onto the array columns, output
//! channels with similar weight-sign patterns are grouped together so that
//! one shared input-channel order suits every column of the group.  The
//! paper solves this hard-balanced clustering problem with balanced k-means
//! on the weight sign matrix under the Manhattan (sign-difference) metric;
//! this module implements that algorithm plus a Euclidean-on-values variant
//! used by the ablation benches.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use accel_sim::Matrix;

use crate::error::ReadError;
use crate::metrics::weight_is_nonneg;

/// Distance metric used for clustering output channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum DistanceMetric {
    /// Manhattan distance between weight *sign* vectors — the paper's
    /// sign-difference `SD(x, y) = Σ |sign(x_i) − sign(y_i)|`.
    #[default]
    SignManhattan,
    /// Euclidean distance between the raw weight values (ablation).
    Euclidean,
}

impl DistanceMetric {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            DistanceMetric::SignManhattan => "sign-manhattan",
            DistanceMetric::Euclidean => "euclidean",
        }
    }
}

/// Sign difference between two weight vectors (the paper's `SD`): the number
/// of positions where one weight is non-negative and the other negative.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use read_core::cluster::sign_difference;
///
/// assert_eq!(sign_difference(&[1, -2, 3], &[1, 2, -3]), 2);
/// assert_eq!(sign_difference(&[1, -2], &[5, -7]), 0);
/// ```
pub fn sign_difference(x: &[i8], y: &[i8]) -> usize {
    assert_eq!(x.len(), y.len(), "sign difference requires equal lengths");
    x.iter()
        .zip(y)
        .filter(|(a, b)| weight_is_nonneg(**a) != weight_is_nonneg(**b))
        .count()
}

/// Total pairwise sign difference inside one cluster of output channels
/// (`SD(W_Ti)` in the paper's Problem 2).
pub fn cluster_sign_difference(weights: &Matrix<i8>, cluster: &[usize]) -> usize {
    let mut total = 0;
    for (i, &a) in cluster.iter().enumerate() {
        let col_a = weights.column(a);
        for &b in &cluster[i + 1..] {
            let col_b = weights.column(b);
            total += sign_difference(&col_a, &col_b);
        }
    }
    total
}

/// Result of a balanced clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterResult {
    /// The clusters: each entry lists the output-channel indices assigned to
    /// that cluster, all of size `cluster_size` (the last may be smaller
    /// when the channel count is not divisible).
    pub clusters: Vec<Vec<usize>>,
    /// Number of iterations executed before convergence (or the cap).
    pub iterations: usize,
    /// Objective value (total within-cluster sign difference) after each
    /// iteration, for convergence plots such as Fig. 5(d).
    pub cost_history: Vec<f64>,
    /// Cluster assignments after each iteration (same layout as
    /// [`ClusterResult::clusters`]), so per-iteration quality metrics can be
    /// recomputed.
    pub history: Vec<Vec<Vec<usize>>>,
}

impl ClusterResult {
    /// The final objective value (total within-cluster sign difference).
    pub fn final_cost(&self) -> f64 {
        self.cost_history.last().copied().unwrap_or(0.0)
    }
}

/// Balanced k-means clustering of output channels.
///
/// Every cluster receives exactly `cluster_size` channels (the array column
/// count `Ac`), except the last when the channel count is not a multiple.
/// Assignment is greedy-balanced: all (channel, centroid) distances are
/// sorted and consumed in ascending order, skipping full clusters, which
/// guarantees the hard balance constraint of Problem 2.
///
/// # Example
///
/// ```
/// use accel_sim::Matrix;
/// use read_core::{BalancedKMeans, DistanceMetric};
///
/// # fn main() -> Result<(), read_core::ReadError> {
/// let weights = Matrix::from_fn(16, 8, |r, c| if (r + c) % 2 == 0 { 3i8 } else { -3 });
/// let result = BalancedKMeans::new(2, DistanceMetric::SignManhattan)
///     .with_seed(7)
///     .run(&weights)?;
/// assert_eq!(result.clusters.len(), 4);
/// for cluster in &result.clusters {
///     assert_eq!(cluster.len(), 2);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancedKMeans {
    cluster_size: usize,
    metric: DistanceMetric,
    max_iterations: usize,
    seed: u64,
}

impl BalancedKMeans {
    /// Creates a clusterer producing clusters of `cluster_size` channels.
    pub fn new(cluster_size: usize, metric: DistanceMetric) -> Self {
        BalancedKMeans {
            cluster_size,
            metric,
            max_iterations: 30,
            seed: 0x5EED,
        }
    }

    /// Sets the iteration cap (default 30, as in the paper's convergence
    /// plot).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the RNG seed used for centroid initialisation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured cluster size.
    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// Runs the clustering on a `C x K` weight matrix (reduction rows x
    /// output channels).
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::EmptyWeights`] for an empty matrix and
    /// [`ReadError::InvalidGrouping`] if the cluster size is zero.
    pub fn run(&self, weights: &Matrix<i8>) -> Result<ClusterResult, ReadError> {
        if weights.is_empty() {
            return Err(ReadError::EmptyWeights);
        }
        if self.cluster_size == 0 {
            return Err(ReadError::InvalidGrouping {
                reason: "cluster size must be non-zero".into(),
            });
        }
        let k = weights.cols();
        let n_clusters = k.div_ceil(self.cluster_size);
        let features: Vec<Vec<f64>> = (0..k).map(|c| self.feature_vector(weights, c)).collect();

        // Initialise centroids from a random sample of channels.
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut channel_ids: Vec<usize> = (0..k).collect();
        channel_ids.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f64>> = channel_ids
            .iter()
            .take(n_clusters)
            .map(|&c| features[c].clone())
            .collect();
        // Degenerate case: fewer channels than clusters cannot happen since
        // n_clusters = ceil(k / size) <= k, but keep the loop robust anyway.

        let mut clusters: Vec<Vec<usize>> = Vec::new();
        let mut cost_history = Vec::new();
        let mut history = Vec::new();
        let mut iterations = 0;

        for _ in 0..self.max_iterations.max(1) {
            iterations += 1;
            let new_clusters = self.balanced_assign(&features, &centroids, k, n_clusters);
            let cost: f64 = new_clusters
                .iter()
                .map(|cluster| cluster_sign_difference(weights, cluster) as f64)
                .sum();
            cost_history.push(cost);
            history.push(new_clusters.clone());
            let converged = new_clusters == clusters;
            clusters = new_clusters;
            if converged {
                break;
            }
            // Update centroids to the mean feature of each cluster.
            for (ci, cluster) in clusters.iter().enumerate() {
                if cluster.is_empty() {
                    continue;
                }
                let dim = features[0].len();
                let mut mean = vec![0.0; dim];
                for &ch in cluster {
                    for (m, f) in mean.iter_mut().zip(&features[ch]) {
                        *m += f;
                    }
                }
                for m in &mut mean {
                    *m /= cluster.len() as f64;
                }
                centroids[ci] = mean;
            }
        }

        Ok(ClusterResult {
            clusters,
            iterations,
            cost_history,
            history,
        })
    }

    fn feature_vector(&self, weights: &Matrix<i8>, channel: usize) -> Vec<f64> {
        let col = weights.column(channel);
        match self.metric {
            DistanceMetric::SignManhattan => col
                .iter()
                .map(|&w| if weight_is_nonneg(w) { 1.0 } else { 0.0 })
                .collect(),
            DistanceMetric::Euclidean => col.iter().map(|&w| f64::from(w)).collect(),
        }
    }

    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match self.metric {
            DistanceMetric::SignManhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            DistanceMetric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt(),
        }
    }

    fn balanced_assign(
        &self,
        features: &[Vec<f64>],
        centroids: &[Vec<f64>],
        k: usize,
        n_clusters: usize,
    ) -> Vec<Vec<usize>> {
        // Greedy balanced assignment: consume (distance, channel, cluster)
        // triples in ascending distance order, skipping channels already
        // placed and clusters already full.
        let mut triples: Vec<(f64, usize, usize)> = Vec::with_capacity(k * n_clusters);
        for (ch, feat) in features.iter().enumerate() {
            for (ci, centroid) in centroids.iter().enumerate() {
                triples.push((self.distance(feat, centroid), ch, ci));
            }
        }
        triples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); n_clusters];
        let mut assigned = vec![false; k];
        let mut remaining = k;
        // Cluster capacities: all `cluster_size`, except the leftover slots
        // are spread so the total equals k.
        let full_capacity = self.cluster_size;
        let mut capacities = vec![full_capacity; n_clusters];
        let overflow = n_clusters * full_capacity - k;
        for cap in capacities.iter_mut().take(overflow) {
            *cap -= 1;
        }
        for (_, ch, ci) in triples {
            if remaining == 0 {
                break;
            }
            if assigned[ch] || clusters[ci].len() >= capacities[ci] {
                continue;
            }
            clusters[ci].push(ch);
            assigned[ch] = true;
            remaining -= 1;
        }
        // Keep deterministic, readable output: channels within a cluster in
        // ascending index order, clusters sorted by their first channel.
        for cluster in &mut clusters {
            cluster.sort_unstable();
        }
        clusters.retain(|c| !c.is_empty());
        clusters.sort_by_key(|c| c[0]);
        clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example_matrix() -> Matrix<i8> {
        // Section IV-C example: clustering {0,2} and {1,3} minimizes the
        // sign difference.
        Matrix::from_vec(
            4,
            4,
            vec![
                4, -5, 5, -1, //
                -10, 3, -2, 2, //
                9, -2, 3, -1, //
                -2, 3, -6, 3,
            ],
        )
        .unwrap()
    }

    #[test]
    fn sign_difference_basics() {
        assert_eq!(sign_difference(&[], &[]), 0);
        assert_eq!(sign_difference(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(sign_difference(&[-1, -2], &[1, 2]), 2);
        assert_eq!(sign_difference(&[0, -1], &[1, -5]), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn sign_difference_length_mismatch_panics() {
        let _ = sign_difference(&[1], &[1, 2]);
    }

    #[test]
    fn paper_example_clusters_matching_signs() {
        let w = paper_example_matrix();
        let result = BalancedKMeans::new(2, DistanceMetric::SignManhattan)
            .with_seed(1)
            .run(&w)
            .unwrap();
        assert_eq!(result.clusters.len(), 2);
        // Channels 0 and 2 have identical sign patterns (+,-,+,-), channels
        // 1 and 3 the opposite; the optimal balanced clustering pairs them.
        let mut clusters = result.clusters.clone();
        clusters.sort();
        assert_eq!(clusters, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(result.final_cost(), 0.0);
    }

    #[test]
    fn clusters_are_balanced_and_disjoint() {
        let w = Matrix::from_fn(32, 23, |r, c| (((r * 7 + c * 13) % 11) as i8) - 5);
        let size = 4;
        let result = BalancedKMeans::new(size, DistanceMetric::SignManhattan)
            .with_seed(9)
            .run(&w)
            .unwrap();
        let mut seen = [false; 23];
        for cluster in &result.clusters {
            assert!(cluster.len() <= size);
            for &c in cluster {
                assert!(!seen[c], "channel {c} assigned twice");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every channel must be covered");
        // 23 channels in clusters of 4 -> 6 clusters.
        assert_eq!(result.clusters.len(), 6);
    }

    #[test]
    fn clustering_reduces_objective_vs_consecutive_grouping() {
        let w = Matrix::from_fn(64, 16, |r, c| {
            // Two families of sign patterns interleaved across channels.
            let sign = if (r + c) % 2 == 0 { 1 } else { -1 };
            (sign * (1 + ((r * c) % 5) as i32)) as i8
        });
        let size = 4;
        let consecutive: Vec<Vec<usize>> = (0..4).map(|g| (g * 4..(g + 1) * 4).collect()).collect();
        let consecutive_cost: usize = consecutive
            .iter()
            .map(|c| cluster_sign_difference(&w, c))
            .sum();
        let result = BalancedKMeans::new(size, DistanceMetric::SignManhattan)
            .with_seed(3)
            .run(&w)
            .unwrap();
        let clustered_cost: usize = result
            .clusters
            .iter()
            .map(|c| cluster_sign_difference(&w, c))
            .sum();
        assert!(
            clustered_cost <= consecutive_cost,
            "clustered {clustered_cost} vs consecutive {consecutive_cost}"
        );
        assert!(clustered_cost == 0);
    }

    #[test]
    fn cost_history_is_recorded_and_bounded_by_iterations() {
        let w = Matrix::from_fn(24, 12, |r, c| (((r * 3 + c * 5) % 13) as i8) - 6);
        let result = BalancedKMeans::new(4, DistanceMetric::SignManhattan)
            .with_max_iterations(10)
            .run(&w)
            .unwrap();
        assert_eq!(result.cost_history.len(), result.iterations);
        assert_eq!(result.history.len(), result.iterations);
        assert!(result.iterations <= 10);
        // The final cost never exceeds the initial cost.
        assert!(result.final_cost() <= result.cost_history[0] + 1e-9);
    }

    #[test]
    fn euclidean_metric_also_produces_balanced_clusters() {
        let w = Matrix::from_fn(16, 8, |r, c| (((r + c * 3) % 9) as i8) - 4);
        let result = BalancedKMeans::new(2, DistanceMetric::Euclidean)
            .run(&w)
            .unwrap();
        assert_eq!(result.clusters.len(), 4);
        assert!(result.clusters.iter().all(|c| c.len() == 2));
        assert_eq!(DistanceMetric::Euclidean.name(), "euclidean");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let w = Matrix::from_fn(4, 4, |_, _| 1i8);
        assert!(BalancedKMeans::new(0, DistanceMetric::SignManhattan)
            .run(&w)
            .is_err());
        let empty = Matrix::<i8>::zeros(0, 0);
        assert!(BalancedKMeans::new(2, DistanceMetric::SignManhattan)
            .run(&empty)
            .is_err());
    }

    #[test]
    fn single_cluster_when_size_covers_all_channels() {
        let w = Matrix::from_fn(8, 3, |r, c| ((r + c) % 3) as i8 - 1);
        let result = BalancedKMeans::new(8, DistanceMetric::SignManhattan)
            .run(&w)
            .unwrap();
        assert_eq!(result.clusters.len(), 1);
        assert_eq!(result.clusters[0], vec![0, 1, 2]);
    }
}
