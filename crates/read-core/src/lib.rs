//! READ: Reliability-Enhanced Accelerator Dataflow optimization.
//!
//! This crate implements the paper's contribution: a post-training dataflow
//! optimization that reduces the *critical input patterns* (partial-sum sign
//! flips) of a spatial DNN accelerator by choosing the order in which the
//! multiply-accumulate operations of a convolution are performed.
//!
//! The optimization has three pieces:
//!
//! * **Input-channel reordering** ([`reorder`]) — Algorithm 1 of the paper:
//!   sort the input channels of a weight sub-matrix so that non-negative
//!   weights are computed first (`sign_first`) or so that the running sum
//!   stays positive as long as possible (`mag_first`).  With non-negative
//!   (post-ReLU) activations this makes the partial sum rise monotonically
//!   and then fall, so the sign flips at most once per output.
//! * **Output-channel clustering** ([`cluster`]) — group output channels
//!   with similar weight-sign patterns before segmenting the weight matrix
//!   onto the array columns, so that one shared channel order suits every
//!   column of a group (Problem 2, solved with balanced k-means under the
//!   sign-difference metric).
//! * **Schedules and hardware support** ([`optimizer`], [`lut`],
//!   [`schedule`]) — the cluster-then-reorder pipeline that produces a
//!   [`LayerSchedule`], the IFMAP address-LUT model that realizes the
//!   activation reordering in hardware, and the cross-layer propagation of
//!   output-channel orders.
//!
//! Changing the computation order never changes the convolution result; the
//! crate's tests and the property tests assert this invariant throughout.
//!
//! # Example
//!
//! ```
//! use accel_sim::Matrix;
//! use read_core::{ClusteringMode, ReadConfig, ReadOptimizer, SortCriterion};
//!
//! # fn main() -> Result<(), read_core::ReadError> {
//! // A 64-input-channel x 16-output-channel weight matrix.
//! let weights = Matrix::from_fn(64, 16, |r, c| (((r * 23 + c * 7) % 13) as i8) - 6);
//! let optimizer = ReadOptimizer::new(ReadConfig {
//!     criterion: SortCriterion::SignFirst,
//!     clustering: ClusteringMode::ClusterThenReorder,
//!     ..ReadConfig::default()
//! });
//! // Map onto an array with 4 columns: 4 clusters of 4 output channels.
//! let schedule = optimizer.optimize(&weights, 4)?;
//! assert_eq!(schedule.clusters().len(), 4);
//! // The schedule can drive the cycle-level simulator directly.
//! let compute = schedule.to_compute_schedule();
//! assert!(compute.validate(64, 16).is_ok());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod kernels;
pub mod lut;
pub mod metrics;
pub mod optimizer;
pub mod related_work;
pub mod reorder;
pub mod schedule;

pub use cluster::{
    cluster_sign_difference, sign_difference, BalancedKMeans, ClusterResult, DistanceMetric,
};
pub use error::ReadError;
pub use kernels::{
    packed_count_sign_flips, sign_flips_for_order_packed, sign_flips_for_order_with,
    SignFlipScratch,
};
pub use lut::AddressLut;
pub use metrics::{
    channel_stats, count_sign_flips, nonneg_quantile_profile, nonneg_ratio_in_top,
    sign_flips_for_order, sign_flips_for_order_scalar, weight_is_nonneg, WeightColumnStats,
};
pub use optimizer::{ClusterSchedule, ClusteringMode, LayerSchedule, ReadConfig, ReadOptimizer};
pub use related_work::{technique_comparison, Technique};
pub use reorder::{sort_input_channels, SortCriterion};
pub use schedule::{
    expand_channel_order_to_rows, permute_input_channels, LayerDescriptor, NetworkScheduler,
    ScheduledLayer,
};
