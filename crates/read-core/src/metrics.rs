//! Objective metrics: sign-flip counting and weight-distribution profiles.
//!
//! These are the analytical counterparts of the simulator statistics: they
//! evaluate an ordering without running the cycle-level simulator, which is
//! what the optimizer and the Fig. 5 weight-distribution plots need.

use accel_sim::Matrix;

use crate::error::ReadError;

/// Per-input-channel sorting metrics of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WeightColumnStats {
    /// Number of non-negative weights of this input channel across the
    /// considered output channels (`metric_sign` in Algorithm 1).
    pub nonneg_count: usize,
    /// Sum of the weights of this input channel across the considered
    /// output channels (`metric_mag` in Algorithm 1).
    pub weight_sum: i64,
}

/// Returns `true` when a weight counts as non-negative for the purposes of
/// the paper's `sign(·)` function (which returns 1 for positive inputs and 0
/// for negative inputs; zero weights cannot flip the sign and are grouped
/// with the non-negative ones).
#[inline]
pub fn weight_is_nonneg(w: i8) -> bool {
    w >= 0
}

/// Computes the per-input-channel metrics over the selected output channels.
///
/// # Errors
///
/// Returns [`ReadError::InvalidOrder`] if any column index is out of range,
/// or [`ReadError::EmptyWeights`] for an empty matrix.
pub fn channel_stats(
    weights: &Matrix<i8>,
    columns: &[usize],
) -> Result<Vec<WeightColumnStats>, ReadError> {
    if weights.is_empty() {
        return Err(ReadError::EmptyWeights);
    }
    for &c in columns {
        if c >= weights.cols() {
            return Err(ReadError::InvalidOrder {
                reason: format!("column {c} out of range ({})", weights.cols()),
            });
        }
    }
    let mut stats = vec![WeightColumnStats::default(); weights.rows()];
    for (r, stat) in stats.iter_mut().enumerate() {
        for &c in columns {
            let w = weights[(r, c)];
            if weight_is_nonneg(w) {
                stat.nonneg_count += 1;
            }
            stat.weight_sum += i64::from(w);
        }
    }
    Ok(stats)
}

/// Counts the partial-sum sign flips produced by accumulating the given
/// sequence of per-cycle addends (weight x activation products), starting
/// from a zero partial sum.
///
/// This is the paper's `SF` objective for a single output activation.
///
/// # Example
///
/// ```
/// use read_core::count_sign_flips;
///
/// // Accumulating -1, 7, -5, 4 from zero crosses the sign twice.
/// assert_eq!(count_sign_flips([-1i64, 7, -5, 4]), 2);
/// // Non-negative-first ordering of the same addends never goes negative.
/// assert_eq!(count_sign_flips([7i64, 4, -1, -5]), 0);
/// ```
pub fn count_sign_flips<I>(addends: I) -> usize
where
    I: IntoIterator<Item = i64>,
{
    let mut psum: i64 = 0;
    let mut flips = 0;
    for a in addends {
        // Wrapping keeps the fold total over all i64 inputs (a hardware
        // accumulator wraps too) and bit-exact with the word-parallel
        // kernel; real weight/activation products never get near the range.
        let next = psum.wrapping_add(a);
        if (psum < 0) != (next < 0) {
            flips += 1;
        }
        psum = next;
    }
    flips
}

/// Total sign flips over all selected output channels when the reduction
/// rows are visited in `order`, for a given activation vector (one
/// activation per reduction row).
///
/// When `activations` is `None` every activation is taken as 1 — the
/// "unit-activation" surrogate the optimizer uses, valid because post-ReLU
/// activations are non-negative and the sign of each product is then the
/// sign of the weight.
///
/// # Errors
///
/// Returns [`ReadError::InvalidOrder`] if `order` is not a permutation of
/// the row indices, if any column is out of range, or if the activation
/// vector has the wrong length.
///
/// Internally this routes through
/// [`crate::kernels::sign_flips_for_order_with`], which is bit-exact with
/// the plain reference [`sign_flips_for_order_scalar`] but allocation-free
/// once warm.  Hot loops that score many candidate orderings should call
/// the `_with` variant directly and reuse its scratch buffers.
pub fn sign_flips_for_order(
    weights: &Matrix<i8>,
    columns: &[usize],
    order: &[usize],
    activations: Option<&[i8]>,
) -> Result<u64, ReadError> {
    let mut scratch = crate::kernels::SignFlipScratch::new();
    crate::kernels::sign_flips_for_order_with(&mut scratch, weights, columns, order, activations)
}

/// Scalar reference implementation of [`sign_flips_for_order`].
///
/// [`sign_flips_for_order`] routes through the allocation-free kernel in
/// [`crate::kernels`]; this function keeps the straightforward one-column-
/// at-a-time fold as the executable specification the kernel equivalence
/// tests compare against.  Results and error messages are identical.
///
/// # Errors
///
/// Same conditions as [`sign_flips_for_order`].
pub fn sign_flips_for_order_scalar(
    weights: &Matrix<i8>,
    columns: &[usize],
    order: &[usize],
    activations: Option<&[i8]>,
) -> Result<u64, ReadError> {
    validate_order(order, weights.rows())?;
    if let Some(acts) = activations {
        if acts.len() != weights.rows() {
            return Err(ReadError::InvalidOrder {
                reason: format!(
                    "activation length {} != reduction length {}",
                    acts.len(),
                    weights.rows()
                ),
            });
        }
    }
    let mut total = 0u64;
    for &c in columns {
        if c >= weights.cols() {
            return Err(ReadError::InvalidOrder {
                reason: format!("column {c} out of range ({})", weights.cols()),
            });
        }
        let flips = count_sign_flips(order.iter().map(|&r| {
            let a = activations.map_or(1i64, |acts| i64::from(acts[r]));
            i64::from(weights[(r, c)]) * a
        }));
        total += flips as u64;
    }
    Ok(total)
}

/// Fraction of non-negative weights in each position-quantile of the
/// reordered weight matrix (the Fig. 5(a)–(c) profile).
///
/// The rows of `weights` (restricted to `columns`) are visited in `order`;
/// the visited positions are split into `buckets` equal quantiles and the
/// non-negative ratio of each bucket is returned.
///
/// # Errors
///
/// Returns [`ReadError::InvalidOrder`] for inconsistent orders or columns,
/// and [`ReadError::InvalidGrouping`] if `buckets` is zero.
pub fn nonneg_quantile_profile(
    weights: &Matrix<i8>,
    columns: &[usize],
    order: &[usize],
    buckets: usize,
) -> Result<Vec<f64>, ReadError> {
    if buckets == 0 {
        return Err(ReadError::InvalidGrouping {
            reason: "quantile bucket count must be non-zero".into(),
        });
    }
    validate_order(order, weights.rows())?;
    let mut totals = vec![0usize; buckets];
    let mut nonneg = vec![0usize; buckets];
    for (pos, &r) in order.iter().enumerate() {
        let bucket = (pos * buckets / order.len()).min(buckets - 1);
        for &c in columns {
            if c >= weights.cols() {
                return Err(ReadError::InvalidOrder {
                    reason: format!("column {c} out of range ({})", weights.cols()),
                });
            }
            totals[bucket] += 1;
            if weight_is_nonneg(weights[(r, c)]) {
                nonneg[bucket] += 1;
            }
        }
    }
    Ok(totals
        .iter()
        .zip(&nonneg)
        .map(|(&t, &n)| if t == 0 { 0.0 } else { n as f64 / t as f64 })
        .collect())
}

/// Fraction of non-negative weights among the first `fraction` of the
/// reordered positions (the Fig. 5(d) convergence metric: "ratio of
/// non-negative weights in the top 25 % / 50 % of the weight matrix").
///
/// # Errors
///
/// Same conditions as [`nonneg_quantile_profile`].
pub fn nonneg_ratio_in_top(
    weights: &Matrix<i8>,
    columns: &[usize],
    order: &[usize],
    fraction: f64,
) -> Result<f64, ReadError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(ReadError::InvalidGrouping {
            reason: format!("fraction {fraction} outside [0, 1]"),
        });
    }
    validate_order(order, weights.rows())?;
    let top = ((order.len() as f64 * fraction).ceil() as usize).min(order.len());
    if top == 0 {
        return Ok(0.0);
    }
    let mut total = 0usize;
    let mut nonneg = 0usize;
    for &r in order.iter().take(top) {
        for &c in columns {
            if c >= weights.cols() {
                return Err(ReadError::InvalidOrder {
                    reason: format!("column {c} out of range ({})", weights.cols()),
                });
            }
            total += 1;
            if weight_is_nonneg(weights[(r, c)]) {
                nonneg += 1;
            }
        }
    }
    Ok(nonneg as f64 / total as f64)
}

pub(crate) fn validate_order(order: &[usize], len: usize) -> Result<(), ReadError> {
    if order.len() != len {
        return Err(ReadError::InvalidOrder {
            reason: format!("order length {} != {}", order.len(), len),
        });
    }
    let mut seen = vec![false; len];
    for &i in order {
        if i >= len || seen[i] {
            return Err(ReadError::InvalidOrder {
                reason: format!("index {i} repeated or out of range"),
            });
        }
        seen[i] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_weights() -> Matrix<i8> {
        Matrix::from_fn(8, 4, |r, c| (((r * 5 + c * 3) % 9) as i8) - 4)
    }

    #[test]
    fn channel_stats_counts() {
        let w = Matrix::from_vec(3, 2, vec![1i8, -1, 0, 5, -3, -2]).unwrap();
        let stats = channel_stats(&w, &[0, 1]).unwrap();
        assert_eq!(
            stats[0],
            WeightColumnStats {
                nonneg_count: 1,
                weight_sum: 0
            }
        );
        assert_eq!(
            stats[1],
            WeightColumnStats {
                nonneg_count: 2,
                weight_sum: 5
            }
        );
        assert_eq!(
            stats[2],
            WeightColumnStats {
                nonneg_count: 0,
                weight_sum: -5
            }
        );
    }

    #[test]
    fn channel_stats_validates_columns() {
        let w = demo_weights();
        assert!(channel_stats(&w, &[4]).is_err());
        let empty = Matrix::<i8>::zeros(0, 0);
        assert!(channel_stats(&empty, &[]).is_err());
    }

    #[test]
    fn paper_fig3_example() {
        // Fig. 3: a 1x4 convolution with weights [-1, 7, -5, 4] and inputs
        // [3, 3, 2, 1].  The natural order repeatedly crosses zero; the
        // non-negative-first order never goes negative because the final
        // output is positive, so it produces zero sign flips.
        let products: Vec<i64> = vec![-3, 7 * 3, -5 * 2, 4];
        assert_eq!(count_sign_flips(products), 2);
        let reordered: Vec<i64> = vec![7 * 3, 4, -5 * 2, -3];
        assert_eq!(count_sign_flips(reordered), 0);
    }

    #[test]
    fn sign_flips_for_order_unit_activations() {
        let w = Matrix::from_vec(4, 1, vec![-1i8, 7, -5, 4]).unwrap();
        let natural = sign_flips_for_order(&w, &[0], &[0, 1, 2, 3], None).unwrap();
        let sorted = sign_flips_for_order(&w, &[0], &[1, 3, 0, 2], None).unwrap();
        assert!(natural >= sorted);
        assert_eq!(sorted, 0);
    }

    #[test]
    fn sign_flips_for_order_with_activations() {
        let w = Matrix::from_vec(4, 1, vec![-1i8, 7, -5, 4]).unwrap();
        let acts = vec![3i8, 3, 2, 1];
        let natural = sign_flips_for_order(&w, &[0], &[0, 1, 2, 3], Some(&acts)).unwrap();
        assert_eq!(natural, 2);
        assert!(sign_flips_for_order(&w, &[0], &[0, 1, 2, 3], Some(&[1, 2])).is_err());
    }

    #[test]
    fn sign_flips_rejects_bad_order() {
        let w = demo_weights();
        assert!(sign_flips_for_order(&w, &[0], &[0, 1, 2], None).is_err());
        assert!(sign_flips_for_order(&w, &[9], &(0..8).collect::<Vec<_>>(), None).is_err());
    }

    #[test]
    fn quantile_profile_sums_to_overall_ratio() {
        let w = demo_weights();
        let order: Vec<usize> = (0..8).collect();
        let profile = nonneg_quantile_profile(&w, &[0, 1, 2, 3], &order, 4).unwrap();
        assert_eq!(profile.len(), 4);
        for p in &profile {
            assert!((0.0..=1.0).contains(p));
        }
        assert!(nonneg_quantile_profile(&w, &[0], &order, 0).is_err());
    }

    #[test]
    fn sorted_profile_is_front_loaded() {
        // After sorting rows by non-negative count the early quantiles must
        // have at least the non-negative density of the late quantiles.
        let w = demo_weights();
        let cols: Vec<usize> = (0..4).collect();
        let stats = channel_stats(&w, &cols).unwrap();
        let mut order: Vec<usize> = (0..8).collect();
        order.sort_by_key(|&r| std::cmp::Reverse(stats[r].nonneg_count));
        let profile = nonneg_quantile_profile(&w, &cols, &order, 2).unwrap();
        assert!(profile[0] >= profile[1]);
    }

    #[test]
    fn top_ratio_bounds() {
        let w = demo_weights();
        let cols: Vec<usize> = (0..4).collect();
        let order: Vec<usize> = (0..8).collect();
        let all = nonneg_ratio_in_top(&w, &cols, &order, 1.0).unwrap();
        let quarter = nonneg_ratio_in_top(&w, &cols, &order, 0.25).unwrap();
        assert!((0.0..=1.0).contains(&all));
        assert!((0.0..=1.0).contains(&quarter));
        assert!(nonneg_ratio_in_top(&w, &cols, &order, 1.5).is_err());
        assert_eq!(nonneg_ratio_in_top(&w, &cols, &order, 0.0).unwrap(), 0.0);
    }
}
