//! Input-channel reordering (Algorithm 1 of the paper).
//!
//! Given the weight sub-matrix of the output channels that share one pass
//! through the array, the input channels (reduction rows) are sorted so that
//! the channels contributing non-negative products are computed first.  With
//! non-negative post-ReLU activations the partial sum then rises
//! monotonically before it falls, so its sign flips at most once per output
//! activation.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use accel_sim::Matrix;

use crate::error::ReadError;
use crate::metrics::channel_stats;

/// The sorting criterion of Algorithm 1 (plus two ablation variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum SortCriterion {
    /// Primary key: number of non-negative weights per channel; tie-break:
    /// channel weight sum.  The paper's `sign_first` approach and its best
    /// performer.
    #[default]
    SignFirst,
    /// Primary key: channel weight sum; tie-break: number of non-negative
    /// weights.  The paper's `mag_first` approach.
    MagFirst,
    /// Ablation: sort by the weight sum only (no sign information).
    MagnitudeOnly,
    /// Ablation: a random permutation (seeded), to separate the effect of
    /// *any* fixed reorder from the sign-aware ones.
    Random {
        /// RNG seed for the permutation.
        seed: u64,
    },
}

impl SortCriterion {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            SortCriterion::SignFirst => "sign_first",
            SortCriterion::MagFirst => "mag_first",
            SortCriterion::MagnitudeOnly => "magnitude_only",
            SortCriterion::Random { .. } => "random",
        }
    }
}

impl std::fmt::Display for SortCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sorts the input channels (reduction rows) of `weights`, restricted to the
/// given output `columns`, returning the visiting order (a permutation of
/// `0..weights.rows()`).
///
/// This is the `sort_input_channel` function of Algorithm 1: each channel is
/// scored by its non-negative-weight count and its weight sum; the secondary
/// metric is min–max scaled into `[0, 1]` so it only breaks ties of the
/// primary metric, and channels are visited in descending score order.
///
/// # Errors
///
/// Returns [`ReadError::EmptyWeights`] for an empty matrix and
/// [`ReadError::InvalidOrder`] if a column index is out of range.
///
/// # Example
///
/// ```
/// use accel_sim::Matrix;
/// use read_core::{sort_input_channels, SortCriterion};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Matrix::from_vec(4, 1, vec![-1i8, 7, -5, 4])?;
/// let order = sort_input_channels(&w, &[0], SortCriterion::SignFirst)?;
/// // The two non-negative channels (1 and 3) come first.
/// assert_eq!(&order[..2], &[1, 3]);
/// # Ok(())
/// # }
/// ```
pub fn sort_input_channels(
    weights: &Matrix<i8>,
    columns: &[usize],
    criterion: SortCriterion,
) -> Result<Vec<usize>, ReadError> {
    if weights.is_empty() {
        return Err(ReadError::EmptyWeights);
    }
    let rows = weights.rows();
    if let SortCriterion::Random { seed } = criterion {
        let mut order: Vec<usize> = (0..rows).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        return Ok(order);
    }

    let stats = channel_stats(weights, columns)?;
    let sign_metric: Vec<f64> = stats.iter().map(|s| s.nonneg_count as f64).collect();
    let mag_metric: Vec<f64> = stats.iter().map(|s| s.weight_sum as f64).collect();

    let scores: Vec<f64> = match criterion {
        SortCriterion::SignFirst => combine(&sign_metric, &scale_unit(&mag_metric)),
        SortCriterion::MagFirst => combine(&mag_metric, &scale_unit(&sign_metric)),
        SortCriterion::MagnitudeOnly => mag_metric.clone(),
        SortCriterion::Random { .. } => unreachable!("handled above"),
    };

    let mut order: Vec<usize> = (0..rows).collect();
    // Descending by score; ties broken by the original index so the sort is
    // fully deterministic.
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    Ok(order)
}

/// Min–max scales a metric into `[0, 1]` (Algorithm 1, lines 6 and 8).  A
/// constant metric scales to all zeros.
fn scale_unit(values: &[f64]) -> Vec<f64> {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(max - min).is_normal() {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - min) / (max - min)).collect()
}

/// Adds the scaled secondary metric to the primary metric (Algorithm 1,
/// line 9).
fn combine(primary: &[f64], scaled_secondary: &[f64]) -> Vec<f64> {
    primary
        .iter()
        .zip(scaled_secondary)
        .map(|(p, s)| p + s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::sign_flips_for_order;

    fn random_weights(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
        // Small deterministic pseudo-random weights with a balanced sign
        // distribution (mimics a He-initialised, int8-quantized layer).
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add((c as u64).wrapping_mul(1442695040888963407))
                .wrapping_add(seed);
            ((x >> 33) % 21) as i8 - 10
        })
    }

    #[test]
    fn sign_first_puts_nonnegative_channels_first() {
        let w = Matrix::from_vec(6, 1, vec![-3i8, 5, -1, 0, 7, -2]).unwrap();
        let order = sort_input_channels(&w, &[0], SortCriterion::SignFirst).unwrap();
        // Channels 1, 3, 4 are non-negative and must occupy the first three
        // positions (in descending weight-sum order: 4, 1, 3).
        assert_eq!(&order[..3], &[4, 1, 3]);
        // The negative channels follow, larger sums first.
        assert_eq!(&order[3..], &[2, 5, 0]);
    }

    #[test]
    fn mag_first_sorts_by_sum() {
        let w = Matrix::from_vec(4, 1, vec![1i8, 9, -9, 2]).unwrap();
        let order = sort_input_channels(&w, &[0], SortCriterion::MagFirst).unwrap();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn tie_breaking_uses_secondary_metric() {
        // Two channels with the same non-negative count but different sums:
        // the larger sum must come first under sign_first.
        let w = Matrix::from_vec(2, 2, vec![1i8, 1, 5, 5]).unwrap();
        let order = sort_input_channels(&w, &[0, 1], SortCriterion::SignFirst).unwrap();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn all_criteria_return_valid_permutations() {
        let w = random_weights(37, 5, 3);
        let cols: Vec<usize> = (0..5).collect();
        for criterion in [
            SortCriterion::SignFirst,
            SortCriterion::MagFirst,
            SortCriterion::MagnitudeOnly,
            SortCriterion::Random { seed: 1 },
        ] {
            let order = sort_input_channels(&w, &cols, criterion).unwrap();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..37).collect::<Vec<_>>(), "criterion {criterion}");
        }
    }

    #[test]
    fn single_column_sign_first_is_optimal() {
        // For a single output channel and non-negative activations the
        // sign_first order achieves the minimum possible sign flips
        // (0 if the output is non-negative, 1 if negative).
        for seed in 0..10u64 {
            let w = random_weights(24, 1, seed);
            let order = sort_input_channels(&w, &[0], SortCriterion::SignFirst).unwrap();
            let flips = sign_flips_for_order(&w, &[0], &order, None).unwrap();
            let total: i64 = (0..24).map(|r| i64::from(w[(r, 0)])).sum();
            let expected = u64::from(total < 0);
            assert_eq!(flips, expected, "seed {seed}");
        }
    }

    #[test]
    fn reordering_never_increases_flips_single_column() {
        for seed in 0..10u64 {
            let w = random_weights(32, 1, seed * 7 + 1);
            let natural: Vec<usize> = (0..32).collect();
            let baseline = sign_flips_for_order(&w, &[0], &natural, None).unwrap();
            let order = sort_input_channels(&w, &[0], SortCriterion::SignFirst).unwrap();
            let optimized = sign_flips_for_order(&w, &[0], &order, None).unwrap();
            assert!(
                optimized <= baseline,
                "seed {seed}: {optimized} > {baseline}"
            );
        }
    }

    #[test]
    fn multi_column_reordering_reduces_flips_on_average() {
        let w = random_weights(64, 4, 11);
        let cols: Vec<usize> = (0..4).collect();
        let natural: Vec<usize> = (0..64).collect();
        let baseline = sign_flips_for_order(&w, &cols, &natural, None).unwrap();
        let order = sort_input_channels(&w, &cols, SortCriterion::SignFirst).unwrap();
        let optimized = sign_flips_for_order(&w, &cols, &order, None).unwrap();
        assert!(
            optimized < baseline,
            "expected reduction, got {optimized} vs {baseline}"
        );
    }

    #[test]
    fn random_criterion_is_deterministic_per_seed() {
        let w = random_weights(16, 2, 0);
        let a = sort_input_channels(&w, &[0, 1], SortCriterion::Random { seed: 5 }).unwrap();
        let b = sort_input_channels(&w, &[0, 1], SortCriterion::Random { seed: 5 }).unwrap();
        let c = sort_input_channels(&w, &[0, 1], SortCriterion::Random { seed: 6 }).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_matrix_rejected() {
        let w = Matrix::<i8>::zeros(0, 0);
        assert!(sort_input_channels(&w, &[], SortCriterion::SignFirst).is_err());
    }

    #[test]
    fn criterion_names() {
        assert_eq!(SortCriterion::SignFirst.name(), "sign_first");
        assert_eq!(SortCriterion::MagFirst.name(), "mag_first");
        assert_eq!(SortCriterion::Random { seed: 0 }.to_string(), "random");
    }
}
