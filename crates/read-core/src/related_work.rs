//! The qualitative comparison of reliability-enhancement techniques
//! (Table I of the paper), reproduced as data so the `table1` bench can
//! print it.

/// Qualitative levels used in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// No cost / not present.
    No,
    /// Present / applies.
    Yes,
    /// Negligible cost.
    Negligible,
    /// Low cost.
    Low,
    /// Medium cost.
    Medium,
    /// High cost.
    High,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Level::No => "no",
            Level::Yes => "yes",
            Level::Negligible => "negligible",
            Level::Low => "low",
            Level::Medium => "medium",
            Level::High => "high",
        };
        f.write_str(s)
    }
}

/// One row of Table I: a timing-error-resilience technique and its
/// qualitative properties.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Technique {
    /// Technique name.
    pub name: &'static str,
    /// Abstraction layer the technique operates at.
    pub layer: &'static str,
    /// Whether the technique scales with technology.
    pub scalable_with_technology: bool,
    /// Whether the technique loses accuracy.
    pub accuracy_loss: bool,
    /// Hardware overhead level.
    pub hardware_overhead: Level,
    /// Whether throughput drops.
    pub throughput_drop: bool,
    /// Design effort level.
    pub design_effort: Level,
}

/// The rows of Table I, in the paper's order.  The last row is READ itself.
pub fn technique_comparison() -> Vec<Technique> {
    vec![
        Technique {
            name: "Guardbanding",
            layer: "circuit",
            scalable_with_technology: false,
            accuracy_loss: false,
            hardware_overhead: Level::High,
            throughput_drop: true,
            design_effort: Level::Low,
        },
        Technique {
            name: "Sensitivity analysis",
            layer: "algorithm",
            scalable_with_technology: true,
            accuracy_loss: true,
            hardware_overhead: Level::Negligible,
            throughput_drop: false,
            design_effort: Level::Medium,
        },
        Technique {
            name: "ABFT",
            layer: "algorithm",
            scalable_with_technology: true,
            accuracy_loss: false,
            hardware_overhead: Level::Medium,
            throughput_drop: true,
            design_effort: Level::High,
        },
        Technique {
            name: "Timing error detection",
            layer: "circuit",
            scalable_with_technology: true,
            accuracy_loss: false,
            hardware_overhead: Level::High,
            throughput_drop: false,
            design_effort: Level::Medium,
        },
        Technique {
            name: "Timing error prediction",
            layer: "circuit",
            scalable_with_technology: true,
            accuracy_loss: true,
            hardware_overhead: Level::Medium,
            throughput_drop: false,
            design_effort: Level::High,
        },
        Technique {
            name: "READ (ours)",
            layer: "dataflow",
            scalable_with_technology: true,
            accuracy_loss: false,
            hardware_overhead: Level::Negligible,
            throughput_drop: false,
            design_effort: Level::Low,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_rows_and_read_is_last() {
        let rows = technique_comparison();
        assert_eq!(rows.len(), 6);
        let read = rows.last().unwrap();
        assert_eq!(read.layer, "dataflow");
        assert!(!read.accuracy_loss);
        assert!(!read.throughput_drop);
        assert_eq!(read.hardware_overhead, Level::Negligible);
        assert_eq!(read.design_effort, Level::Low);
    }

    #[test]
    fn read_dominates_guardbanding() {
        let rows = technique_comparison();
        let guardband = &rows[0];
        let read = rows.last().unwrap();
        assert!(guardband.throughput_drop && !read.throughput_drop);
        assert!(!guardband.scalable_with_technology && read.scalable_with_technology);
    }

    #[test]
    fn level_display() {
        assert_eq!(Level::Negligible.to_string(), "negligible");
        assert_eq!(Level::High.to_string(), "high");
        assert_eq!(Level::Yes.to_string(), "yes");
    }
}
