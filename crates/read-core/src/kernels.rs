//! Sign-flip scoring kernels: the allocation-free scalar scorer and its
//! word-parallel (bit-sliced) alternative.
//!
//! [`crate::sign_flips_for_order`] scores an ordering by replaying the
//! accumulation of every selected output channel and counting the
//! partial-sum sign flips.  Two cores live here:
//!
//! * [`sign_flips_for_order_with`] — the routed default: the scalar fold
//!   with reusable scratch buffers, so a warm scoring call performs zero
//!   heap allocations (`tests/alloc_regression.rs` pins this down).
//! * [`sign_flips_for_order_packed`] — packs up to 64 output channels into
//!   the bit positions of `u64` words ("lanes") and accumulates all of
//!   them per reduction row with a bit-sliced ripple-carry adder
//!   ([`accel_sim::bitplane`]); a sign flip is then an XOR + popcount of
//!   the accumulator sign plane.  Bit-exact with the scalar paths (the
//!   accumulator is sized so it never wraps), but *measurably slower* on
//!   commodity out-of-order cores — the scalar per-element work (one add +
//!   sign compare) is too cheap for transpose-heavy bit-slicing to beat,
//!   unlike the simulator's depth kernel where the scalar path burns a
//!   24-iteration carry scan per MAC.  Kept routed through the benches and
//!   equivalence tests as a measured alternative; see `BENCH_<pr>.json`.
//!
//! Equivalence — exhaustive shapes, remainder lane widths, error messages —
//! is asserted in this module and in `tests/proptest_invariants.rs`.

use accel_sim::{bitplane, Matrix};

use crate::error::ReadError;

/// Reusable buffers for [`sign_flips_for_order_with`].
///
/// Once the buffers have grown to the working-set size (first call), every
/// subsequent call with the same or smaller shapes performs zero heap
/// allocations.
#[derive(Debug, Default, Clone)]
pub struct SignFlipScratch {
    /// Bit-plane accumulator: plane `k` holds bit `k` of every lane's
    /// running partial sum.
    acc: Vec<u64>,
    /// Bitset used to validate that `order` is a permutation.
    seen: Vec<u64>,
}

impl SignFlipScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Permutation check equivalent to the scalar `validate_order`, but backed
/// by a reusable bitset instead of a fresh `vec![false; len]` per call.
/// Error messages are byte-identical to the scalar path.
fn validate_order_bitset(
    seen: &mut Vec<u64>,
    order: &[usize],
    len: usize,
) -> Result<(), ReadError> {
    if order.len() != len {
        return Err(ReadError::InvalidOrder {
            reason: format!("order length {} != {}", order.len(), len),
        });
    }
    let words = len.div_ceil(64);
    seen.clear();
    seen.resize(words, 0);
    for &i in order {
        if i >= len || seen[i / 64] >> (i % 64) & 1 == 1 {
            return Err(ReadError::InvalidOrder {
                reason: format!("index {i} repeated or out of range"),
            });
        }
        seen[i / 64] |= 1 << (i % 64);
    }
    Ok(())
}

/// Number of bit planes needed so a running sum of `rows` addends, each of
/// magnitude at most `max_abs`, is representable in two's complement
/// without wrapping: `bits(rows * max_abs) + 1` (sign bit), clamped to the
/// addend width below and the word width above.
fn planes_needed(rows: usize, max_abs: u64, addend_planes: usize) -> usize {
    let max_sum = (rows as u64).saturating_mul(max_abs).max(1);
    let bits = 64 - max_sum.leading_zeros() as usize;
    (bits + 1).clamp(addend_planes, 64)
}

/// Accumulates every 64-column chunk of `columns` across all rows of
/// `order` in a single row pass and returns the total number of
/// partial-sum sign flips.
///
/// All chunks advance together inside the row loop on purpose: each
/// chunk's bit-sliced ripple-carry addition is a serial dependency chain,
/// but different chunks' chains are independent, so interleaving them lets
/// the CPU overlap their latency (and touches each weight row exactly
/// once).
fn packed_flips(
    acc: &mut Vec<u64>,
    weights: &Matrix<i8>,
    columns: &[usize],
    order: &[usize],
    activations: Option<&[i8]>,
) -> u64 {
    // Unit activations keep the addends at weight width (8 planes);
    // activation products span i16 (16 planes).
    let (addend_planes, max_abs) = if activations.is_some() {
        (16, 128u64 * 128)
    } else {
        (8, 128u64)
    };
    let planes = planes_needed(order.len(), max_abs, addend_planes);
    let sign_plane = planes - 1;
    let n_chunks = columns.len().div_ceil(64);
    acc.clear();
    acc.resize(planes * n_chunks, 0);
    // Column selections are almost always contiguous runs (baseline
    // segmentations, whole-matrix scoring); a run lets the gather be a
    // straight slice copy instead of 64 indexed loads.
    let contiguous = columns.windows(2).all(|w| w[1] == w[0] + 1);
    let mut flips = 0u64;
    match activations {
        Some(acts) => {
            let mut products = [0i16; 64];
            for &r in order {
                let row = weights.row(r);
                let a = i16::from(acts[r]);
                for (cols, acc) in columns.chunks(64).zip(acc.chunks_mut(planes)) {
                    let lanes = cols.len();
                    let before = acc[sign_plane];
                    for (p, &c) in products.iter_mut().zip(cols) {
                        *p = i16::from(row[c]) * a;
                    }
                    let addend = bitplane::planes_from_i16(&products[..lanes]);
                    bitplane::add_sign_extended(acc, &addend, addend[15]);
                    flips += u64::from(
                        ((before ^ acc[sign_plane]) & bitplane::lane_mask(lanes)).count_ones(),
                    );
                }
            }
        }
        None => {
            let mut unit = [0i8; 64];
            for &r in order {
                let row = weights.row(r);
                for (cols, acc) in columns.chunks(64).zip(acc.chunks_mut(planes)) {
                    let lanes = cols.len();
                    let before = acc[sign_plane];
                    let addend = if contiguous {
                        let base = cols[0];
                        bitplane::planes_from_i8(&row[base..base + lanes])
                    } else {
                        for (u, &c) in unit.iter_mut().zip(cols) {
                            *u = row[c];
                        }
                        bitplane::planes_from_i8(&unit[..lanes])
                    };
                    bitplane::add_sign_extended(acc, &addend, addend[7]);
                    flips += u64::from(
                        ((before ^ acc[sign_plane]) & bitplane::lane_mask(lanes)).count_ones(),
                    );
                }
            }
        }
    }
    flips
}

fn validate_scoring_inputs(
    scratch: &mut SignFlipScratch,
    weights: &Matrix<i8>,
    columns: &[usize],
    order: &[usize],
    activations: Option<&[i8]>,
) -> Result<(), ReadError> {
    validate_order_bitset(&mut scratch.seen, order, weights.rows())?;
    if let Some(acts) = activations {
        if acts.len() != weights.rows() {
            return Err(ReadError::InvalidOrder {
                reason: format!(
                    "activation length {} != reduction length {}",
                    acts.len(),
                    weights.rows()
                ),
            });
        }
    }
    for &c in columns {
        if c >= weights.cols() {
            return Err(ReadError::InvalidOrder {
                reason: format!("column {c} out of range ({})", weights.cols()),
            });
        }
    }
    Ok(())
}

/// Allocation-free [`crate::sign_flips_for_order`]: reuses `scratch` across
/// calls so a warm scoring call performs zero heap allocations (asserted by
/// `tests/alloc_regression.rs`).
///
/// Semantics, results and error messages are identical to
/// [`crate::sign_flips_for_order`] (which simply wraps this function with a
/// fresh scratch).  The accumulation core is the scalar fold: the A/B
/// benches in `kernel_throughput` showed the word-parallel scorer
/// ([`sign_flips_for_order_packed`]) *slower* than the fold on commodity
/// out-of-order cores — one add + sign compare per element is too cheap
/// for transpose-heavy bit-slicing to beat — so the packed variant is kept
/// as a measured alternative rather than the routed default.
///
/// # Errors
///
/// Same conditions as [`crate::sign_flips_for_order`].
pub fn sign_flips_for_order_with(
    scratch: &mut SignFlipScratch,
    weights: &Matrix<i8>,
    columns: &[usize],
    order: &[usize],
    activations: Option<&[i8]>,
) -> Result<u64, ReadError> {
    validate_scoring_inputs(scratch, weights, columns, order, activations)?;
    let mut total = 0u64;
    // The activation branch is hoisted out of the per-element closure: this
    // function is a cross-crate call boundary, so the Option would
    // otherwise be re-tested once per MAC.
    match activations {
        Some(acts) => {
            for &c in columns {
                let flips = crate::metrics::count_sign_flips(
                    order
                        .iter()
                        .map(|&r| i64::from(weights[(r, c)]) * i64::from(acts[r])),
                );
                total += flips as u64;
            }
        }
        None => {
            for &c in columns {
                let flips = crate::metrics::count_sign_flips(
                    order.iter().map(|&r| i64::from(weights[(r, c)])),
                );
                total += flips as u64;
            }
        }
    }
    Ok(total)
}

/// Word-parallel (bit-sliced) [`crate::sign_flips_for_order`]: scores up to
/// 64 output channels per pass over the rows.
///
/// Results and error messages are bit-identical to the scalar paths; the
/// equivalence tests in this module and `tests/proptest_invariants.rs` pin
/// that down.  See [`sign_flips_for_order_with`] for why this is not the
/// routed default, and `BENCH_<pr>.json` for the measured trajectory.
///
/// # Errors
///
/// Same conditions as [`crate::sign_flips_for_order`].
pub fn sign_flips_for_order_packed(
    scratch: &mut SignFlipScratch,
    weights: &Matrix<i8>,
    columns: &[usize],
    order: &[usize],
    activations: Option<&[i8]>,
) -> Result<u64, ReadError> {
    validate_scoring_inputs(scratch, weights, columns, order, activations)?;
    Ok(packed_flips(
        &mut scratch.acc,
        weights,
        columns,
        order,
        activations,
    ))
}

/// Word-parallel [`crate::count_sign_flips`] over many addend sequences at
/// once: returns the total sign-flip count across all lanes.
///
/// Each element of `lanes` is one independent accumulation (one output
/// activation).  Sequences may have different lengths; shorter lanes are
/// padded with zero addends, which never flip a sign.  Arithmetic is
/// i64-wrapping, exactly like the scalar fold, so the result equals
/// `lanes.iter().map(|l| count_sign_flips(l) as u64).sum()` for *all*
/// inputs, overflowing ones included.
///
/// # Example
///
/// ```
/// use read_core::{count_sign_flips, packed_count_sign_flips};
///
/// let lanes: Vec<Vec<i64>> = vec![vec![-1, 7, -5, 4], vec![7, 4, -1, -5], vec![-3]];
/// let scalar: u64 = lanes.iter().map(|l| count_sign_flips(l.iter().copied()) as u64).sum();
/// assert_eq!(packed_count_sign_flips(&lanes), scalar);
/// ```
pub fn packed_count_sign_flips<S: AsRef<[i64]>>(lanes: &[S]) -> u64 {
    let mut total = 0u64;
    for chunk in lanes.chunks(64) {
        let mask = bitplane::lane_mask(chunk.len());
        let steps = chunk.iter().map(|l| l.as_ref().len()).max().unwrap_or(0);
        let mut acc = [0u64; 64];
        let mut buf = [0i64; 64];
        for t in 0..steps {
            for (b, lane) in buf.iter_mut().zip(chunk) {
                *b = lane.as_ref().get(t).copied().unwrap_or(0);
            }
            let addend = bitplane::planes_from_i64(&buf[..chunk.len()]);
            let before = acc[63];
            bitplane::add_sign_extended(&mut acc, &addend, addend[63]);
            total += u64::from(((before ^ acc[63]) & mask).count_ones());
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{count_sign_flips, sign_flips_for_order, sign_flips_for_order_scalar};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_weights(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix<i8> {
        Matrix::from_fn(rows, cols, |_, _| rng.gen::<u64>() as i8)
    }

    fn random_order(rng: &mut StdRng, len: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            let j = (rng.gen::<u64>() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }

    #[test]
    fn packed_sign_flips_match_scalar_across_shapes() {
        let mut rng = StdRng::seed_from_u64(0x51f1);
        let mut scratch = SignFlipScratch::new();
        // Column counts straddle the 64-lane word boundary on purpose.
        for &(rows, cols) in &[
            (1usize, 1usize),
            (7, 3),
            (40, 63),
            (16, 64),
            (33, 65),
            (9, 130),
        ] {
            let w = random_weights(&mut rng, rows, cols);
            let order = random_order(&mut rng, rows);
            let columns: Vec<usize> = (0..cols).collect();
            let acts: Vec<i8> = (0..rows).map(|_| rng.gen::<u64>() as i8).collect();
            for activations in [None, Some(acts.as_slice())] {
                let scalar =
                    sign_flips_for_order_scalar(&w, &columns, &order, activations).unwrap();
                let routed = sign_flips_for_order(&w, &columns, &order, activations).unwrap();
                let reused =
                    sign_flips_for_order_with(&mut scratch, &w, &columns, &order, activations)
                        .unwrap();
                let packed =
                    sign_flips_for_order_packed(&mut scratch, &w, &columns, &order, activations)
                        .unwrap();
                assert_eq!(
                    packed,
                    scalar,
                    "{rows}x{cols} acts={}",
                    activations.is_some()
                );
                assert_eq!(routed, scalar);
                assert_eq!(reused, scalar);
            }
        }
    }

    #[test]
    fn packed_sign_flips_match_scalar_on_column_subsets() {
        let mut rng = StdRng::seed_from_u64(0xc0de);
        let w = random_weights(&mut rng, 24, 90);
        let order = random_order(&mut rng, 24);
        // Repeated and unsorted column selections are allowed (and take the
        // non-contiguous gather path in the packed kernel).
        let columns = vec![3usize, 89, 3, 41, 0, 77, 12, 12];
        let scalar = sign_flips_for_order_scalar(&w, &columns, &order, None).unwrap();
        let mut scratch = SignFlipScratch::new();
        assert_eq!(
            sign_flips_for_order_packed(&mut scratch, &w, &columns, &order, None).unwrap(),
            scalar
        );
        assert_eq!(
            sign_flips_for_order(&w, &columns, &order, None).unwrap(),
            scalar
        );
    }

    #[test]
    fn packed_errors_match_scalar_errors() {
        let w = Matrix::from_fn(8, 4, |r, c| (((r * 5 + c * 3) % 9) as i8) - 4);
        let good: Vec<usize> = (0..8).collect();
        type Case = (Vec<usize>, Vec<usize>, Option<Vec<i8>>);
        let cases: Vec<Case> = vec![
            (vec![0], vec![0, 1, 2], None),                 // wrong length
            (vec![0], vec![0, 1, 2, 3, 4, 5, 6, 6], None),  // repeated index
            (vec![0], vec![0, 1, 2, 3, 4, 5, 6, 99], None), // out of range
            (vec![9], good.clone(), None),                  // bad column
            (vec![0], good.clone(), Some(vec![1, 2])),      // bad activation len
        ];
        let mut scratch = SignFlipScratch::new();
        for (columns, order, acts) in cases {
            let scalar =
                sign_flips_for_order_scalar(&w, &columns, &order, acts.as_deref()).unwrap_err();
            let routed =
                sign_flips_for_order_with(&mut scratch, &w, &columns, &order, acts.as_deref())
                    .unwrap_err();
            let packed =
                sign_flips_for_order_packed(&mut scratch, &w, &columns, &order, acts.as_deref())
                    .unwrap_err();
            assert_eq!(format!("{routed}"), format!("{scalar}"));
            assert_eq!(format!("{packed}"), format!("{scalar}"));
        }
    }

    #[test]
    fn packed_count_matches_scalar_on_ragged_lanes() {
        let mut rng = StdRng::seed_from_u64(0xabcd);
        for lanes_n in [1usize, 5, 63, 64, 65, 130] {
            let lanes: Vec<Vec<i64>> = (0..lanes_n)
                .map(|l| {
                    let len = (rng.gen::<u64>() % 9) as usize + l % 3;
                    (0..len)
                        .map(|_| (rng.gen::<u64>() % 2001) as i64 - 1000)
                        .collect()
                })
                .collect();
            let scalar: u64 = lanes
                .iter()
                .map(|l| count_sign_flips(l.iter().copied()) as u64)
                .sum();
            assert_eq!(packed_count_sign_flips(&lanes), scalar, "lanes={lanes_n}");
        }
    }

    #[test]
    fn packed_count_matches_scalar_at_i64_extremes() {
        // Wrapping behaviour must match the scalar wrapping fold.
        let lanes = vec![
            vec![i64::MAX, 1, -1, i64::MIN],
            vec![i64::MIN, i64::MIN],
            vec![0, 0, -1, 1],
            vec![],
        ];
        let scalar: u64 = lanes
            .iter()
            .map(|l| count_sign_flips(l.iter().copied()) as u64)
            .sum();
        assert_eq!(packed_count_sign_flips(&lanes), scalar);
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = SignFlipScratch::new();
        // A large call followed by a small one: stale accumulator/bitset
        // contents must not change results.
        let big = random_weights(&mut rng, 50, 70);
        let big_cols: Vec<usize> = (0..70).collect();
        let big_order = random_order(&mut rng, 50);
        sign_flips_for_order_packed(&mut scratch, &big, &big_cols, &big_order, None).unwrap();
        let small = random_weights(&mut rng, 4, 3);
        let small_cols: Vec<usize> = (0..3).collect();
        let small_order = random_order(&mut rng, 4);
        let scalar = sign_flips_for_order_scalar(&small, &small_cols, &small_order, None).unwrap();
        assert_eq!(
            sign_flips_for_order_packed(&mut scratch, &small, &small_cols, &small_order, None)
                .unwrap(),
            scalar
        );
        assert_eq!(
            sign_flips_for_order_with(&mut scratch, &small, &small_cols, &small_order, None)
                .unwrap(),
            scalar
        );
    }
}
