//! Error type of the READ optimizer.

use std::error::Error;
use std::fmt;

/// Errors reported by the READ optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadError {
    /// The weight matrix is empty.
    EmptyWeights,
    /// A requested grouping parameter is invalid (e.g. zero columns per
    /// cluster).
    InvalidGrouping {
        /// Description of the problem.
        reason: String,
    },
    /// A channel order or cluster assignment is inconsistent with the weight
    /// matrix dimensions.
    InvalidOrder {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::EmptyWeights => write!(f, "weight matrix has no elements"),
            ReadError::InvalidGrouping { reason } => write!(f, "invalid grouping: {reason}"),
            ReadError::InvalidOrder { reason } => write!(f, "invalid channel order: {reason}"),
        }
    }
}

impl Error for ReadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ReadError::EmptyWeights.to_string(),
            "weight matrix has no elements"
        );
        assert!(ReadError::InvalidGrouping {
            reason: "zero columns".into()
        }
        .to_string()
        .contains("zero columns"));
        assert!(ReadError::InvalidOrder {
            reason: "length".into()
        }
        .to_string()
        .contains("length"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ReadError>();
    }
}
