//! IFMAP address look-up table: the hardware support for activation
//! reordering (Section IV-D, Fig. 6 of the paper).
//!
//! Weight matrices are reordered offline, but the input activations must be
//! fetched in the reordered sequence at inference time, and different
//! output-channel clusters use different sequences.  The paper realizes this
//! with a small SRAM LUT in front of the activation buffer: the access
//! counter indexes the LUT, which returns the physical activation address.
//! This module models that LUT (contents, capacity, and overhead) so the
//! negligible-overhead claim can be checked quantitatively.

use crate::error::ReadError;
use crate::metrics::validate_order;

/// Address look-up table holding one activation-fetch order per output
/// -channel cluster.
///
/// # Example
///
/// ```
/// use read_core::AddressLut;
///
/// # fn main() -> Result<(), read_core::ReadError> {
/// let lut = AddressLut::from_orders(vec![vec![2, 0, 1], vec![1, 2, 0]])?;
/// assert_eq!(lut.lookup(0, 0), Some(2));
/// assert_eq!(lut.lookup(1, 2), Some(0));
/// assert_eq!(lut.entries(), 6);
/// // A 1024-channel layer needs less than 2 KB of LUT SRAM (paper claim).
/// let big = AddressLut::from_orders(vec![(0..1024).rev().collect::<Vec<_>>()])?;
/// assert!(big.size_bytes() < 2048);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AddressLut {
    orders: Vec<Vec<usize>>,
    channels: usize,
}

impl AddressLut {
    /// Builds a LUT from per-cluster channel orders.  Every order must be a
    /// permutation of the same channel range.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::InvalidOrder`] if any order is not a permutation
    /// of `0..len` or the orders have inconsistent lengths, and
    /// [`ReadError::EmptyWeights`] if no orders are supplied.
    pub fn from_orders(orders: Vec<Vec<usize>>) -> Result<Self, ReadError> {
        let channels = match orders.first() {
            Some(o) => o.len(),
            None => return Err(ReadError::EmptyWeights),
        };
        for order in &orders {
            if order.len() != channels {
                return Err(ReadError::InvalidOrder {
                    reason: format!(
                        "cluster orders have inconsistent lengths ({} vs {channels})",
                        order.len()
                    ),
                });
            }
            validate_order(order, channels)?;
        }
        Ok(AddressLut { orders, channels })
    }

    /// Number of clusters (independent fetch orders).
    pub fn num_clusters(&self) -> usize {
        self.orders.len()
    }

    /// Number of addressable channels per order.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Physical channel index fetched at logical position `index` for the
    /// given cluster, or `None` when out of range.
    pub fn lookup(&self, cluster: usize, index: usize) -> Option<usize> {
        self.orders.get(cluster)?.get(index).copied()
    }

    /// Borrow the fetch order of one cluster.
    pub fn order(&self, cluster: usize) -> Option<&[usize]> {
        self.orders.get(cluster).map(Vec::as_slice)
    }

    /// Total number of LUT entries (clusters x channels).
    pub fn entries(&self) -> usize {
        self.orders.len() * self.channels
    }

    /// Width of one LUT entry in bits (enough to address every channel).
    pub fn entry_bits(&self) -> u32 {
        if self.channels <= 1 {
            1
        } else {
            usize::BITS - (self.channels - 1).leading_zeros()
        }
    }

    /// Total LUT SRAM size in bytes.
    pub fn size_bytes(&self) -> usize {
        (self.entries() * self.entry_bits() as usize).div_ceil(8)
    }

    /// LUT overhead relative to an on-chip activation buffer of
    /// `buffer_bytes` bytes (the paper compares against a 2–64 MB global
    /// buffer).
    pub fn overhead_fraction(&self, buffer_bytes: usize) -> f64 {
        if buffer_bytes == 0 {
            return f64::INFINITY;
        }
        self.size_bytes() as f64 / buffer_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_round_trips_permutations() {
        let orders = vec![vec![3, 1, 0, 2], vec![0, 1, 2, 3]];
        let lut = AddressLut::from_orders(orders.clone()).unwrap();
        for (ci, order) in orders.iter().enumerate() {
            for (i, &ch) in order.iter().enumerate() {
                assert_eq!(lut.lookup(ci, i), Some(ch));
            }
        }
        assert_eq!(lut.lookup(0, 4), None);
        assert_eq!(lut.lookup(2, 0), None);
        assert_eq!(lut.order(1), Some(&[0usize, 1, 2, 3][..]));
    }

    #[test]
    fn rejects_inconsistent_or_invalid_orders() {
        assert!(AddressLut::from_orders(vec![]).is_err());
        assert!(AddressLut::from_orders(vec![vec![0, 1], vec![0]]).is_err());
        assert!(AddressLut::from_orders(vec![vec![0, 0]]).is_err());
        assert!(AddressLut::from_orders(vec![vec![0, 2]]).is_err());
    }

    #[test]
    fn entry_bits_scale_with_channel_count() {
        let lut = AddressLut::from_orders(vec![(0..1024).collect::<Vec<_>>()]).unwrap();
        assert_eq!(lut.entry_bits(), 10);
        assert_eq!(lut.entries(), 1024);
        assert_eq!(lut.size_bytes(), 1280);
        let tiny = AddressLut::from_orders(vec![vec![0]]).unwrap();
        assert_eq!(tiny.entry_bits(), 1);
    }

    #[test]
    fn paper_overhead_claim_holds() {
        // 1024 channels, one order per 4-column cluster of a 256-channel
        // output (i.e. 64 clusters) would be the extreme case; the paper's
        // claim is per-layer LUT below 2 KB for a single shared order, and
        // negligible relative to a multi-megabyte global buffer.
        let single = AddressLut::from_orders(vec![(0..1024).rev().collect::<Vec<_>>()]).unwrap();
        assert!(single.size_bytes() < 2048);
        assert!(single.overhead_fraction(2 * 1024 * 1024) < 1e-3);
        assert!(single.overhead_fraction(0).is_infinite());
    }
}
