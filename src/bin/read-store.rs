//! `read-store` — the shared artifact-store daemon for a worker fleet.
//!
//! Serves the content-addressed `ArtifactStore` namespace (schedules,
//! histograms, memoized unit results) over a line-delimited TCP GET/PUT
//! protocol, backed by a `DiskStore` directory.  Drivers and `read-worker`
//! processes attach with `RemoteStore` / `--store-addr`, so the whole fleet
//! shares one warm cache and exactly-once computation holds across
//! machines.
//!
//! ```text
//! read-store [--addr HOST:PORT] [--root DIR]
//! ```
//!
//! Runs until a client sends the in-band `shutdown` command (e.g.
//! `RemoteStore::shutdown_daemon`), then exits 0.  See the repo README for
//! the wire grammar.

use std::process::ExitCode;
use std::sync::Arc;

use read_repro::read_pipeline::{ArtifactStore, DiskStore, StoreServer};

struct Args {
    addr: String,
    root: String,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = "127.0.0.1:7361".to_string();
    let mut root = "read-store-data".to_string();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("{what} wants a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--root" => root = value("--root")?,
            "--help" | "-h" => {
                return Err("usage: read-store [--addr HOST:PORT] [--root DIR]".to_string())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(Args { addr, root })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let disk = match DiskStore::new(&args.root) {
        Ok(disk) => disk,
        Err(e) => {
            eprintln!("read-store: --root {}: {e}", args.root);
            return ExitCode::FAILURE;
        }
    };
    let store = Arc::new(disk) as Arc<dyn ArtifactStore>;
    let server = match StoreServer::bind(&args.addr, store) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("read-store: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("read-store listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => {
            println!("read-store: drained and shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("read-store: {e}");
            ExitCode::FAILURE
        }
    }
}
