//! `read-worker` — one fleet worker for a remote sweep.
//!
//! Listens for driver connections (a `SocketExecutor` or a `read-serve`
//! daemon with `--fleet`), rebuilds the driver's `WorkPlan` from its
//! pipeline spec line, and answers encoded work-unit lines with encoded
//! unit-result lines — the remote analog of `WorkPlan::serve` on stdio.
//!
//! ```text
//! read-worker [--addr HOST:PORT] [--store DIR | --store-addr HOST:PORT]
//!             [--die-after-units N]
//! ```
//!
//! With `--store-addr` the worker joins a shared `read-store` namespace, so
//! a cold worker reuses everything the fleet has already computed.
//! `--die-after-units` is fault injection for smoke tests: the worker drops
//! its connection mid-stream after N served units and exits non-zero, as a
//! crashed worker would.  Otherwise the worker runs until a client sends
//! the in-band `shutdown` command, then exits 0.

use std::process::ExitCode;
use std::sync::Arc;

use read_repro::read_pipeline::serve::{WorkerConfig, WorkerServer};
use read_repro::read_pipeline::{ArtifactStore, DiskStore, RemoteStore};

struct Args {
    addr: String,
    config: WorkerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = "127.0.0.1:7351".to_string();
    let mut config = WorkerConfig::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("{what} wants a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--store" => {
                let dir = value("--store")?;
                let store = DiskStore::new(&dir).map_err(|e| format!("--store {dir}: {e}"))?;
                config.store = Some(Arc::new(store) as Arc<dyn ArtifactStore>);
            }
            "--store-addr" => {
                let daemon = value("--store-addr")?;
                let store = RemoteStore::connect(&daemon)
                    .map_err(|e| format!("--store-addr {daemon}: {e}"))?;
                config.store = Some(Arc::new(store) as Arc<dyn ArtifactStore>);
            }
            "--die-after-units" => {
                let n: u64 = value("--die-after-units")?
                    .parse()
                    .map_err(|e| format!("--die-after-units: {e}"))?;
                config.die_after_units = Some(n);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: read-worker [--addr HOST:PORT] [--store DIR | --store-addr HOST:PORT] \
                     [--die-after-units N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(Args { addr, config })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match WorkerServer::bind(&args.addr, args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("read-worker: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("read-worker listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => {
            println!("read-worker: drained and shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("read-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
