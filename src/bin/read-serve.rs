//! `read-serve` — the sweep-as-a-service daemon.
//!
//! Serves TER / corner-sweep / accuracy requests over a line-delimited TCP
//! protocol, coalescing identical in-flight work units across concurrent
//! clients and memoizing everything in a shared artifact store (in-memory
//! by default, disk-backed with `--store`).
//!
//! ```text
//! read-serve [--addr HOST:PORT] [--slots N] [--store DIR] [--timeout-ms N]
//!            [--fleet HOST:PORT,HOST:PORT,...]
//! ```
//!
//! With `--fleet`, bulk requests route their whole plan to the listed
//! `read-worker` processes through a `SocketExecutor` (falling back to the
//! local pool if the fleet fails); interactive requests always run locally.
//!
//! The daemon runs until a client sends the in-band `shutdown` command
//! (e.g. `ServeClient::shutdown`), then drains in-flight requests and
//! exits 0.  See the repo README for the wire grammar.

use std::process::ExitCode;
use std::sync::Arc;

use read_repro::read_pipeline::serve::{ServeServer, ServerConfig};
use read_repro::read_pipeline::{ArtifactStore, DiskStore};

struct Args {
    addr: String,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = "127.0.0.1:7341".to_string();
    let mut config = ServerConfig::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("{what} wants a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--slots" => {
                config.slots = value("--slots")?
                    .parse()
                    .map_err(|e| format!("--slots: {e}"))?;
            }
            "--timeout-ms" => {
                config.default_timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?;
            }
            "--store" => {
                let dir = value("--store")?;
                let store = DiskStore::new(&dir).map_err(|e| format!("--store {dir}: {e}"))?;
                config.store = Some(Arc::new(store) as Arc<dyn ArtifactStore>);
            }
            "--fleet" => {
                config.fleet = value("--fleet")?
                    .split(',')
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--help" | "-h" => {
                return Err(
                    "usage: read-serve [--addr HOST:PORT] [--slots N] [--store DIR] \
                     [--timeout-ms N] [--fleet HOST:PORT,...]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(Args { addr, config })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match ServeServer::bind(&args.addr, args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("read-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "read-serve listening on {} slots={}",
        server.local_addr(),
        server.slots()
    );
    match server.run() {
        Ok(()) => {
            println!("read-serve: drained and shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("read-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
