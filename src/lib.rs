//! # read-repro — READ: Reliability-Enhanced Accelerator Dataflow Optimization
//!
//! Workspace facade crate: re-exports the four substrate crates of the READ
//! reproduction so that examples and downstream users can depend on a single
//! crate.
//!
//! * [`read_core`] — the READ optimizer (input-channel reordering,
//!   output-channel clustering, schedules, LUT hardware model).
//! * [`accel_sim`] — cycle-level systolic-array simulator (MAC datapath,
//!   dataflows, conv→GEMM lowering).
//! * [`timing`] — dynamic timing analysis, PVTA variation corners,
//!   timing-error-rate estimation and error injection.
//! * [`qnn`] — quantized (int8) CNN inference substrate with a VGG/ResNet
//!   model zoo, synthetic datasets, and fault-injection evaluation.
//!
//! # Quickstart
//!
//! ```
//! use read_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small weight matrix: 32 input channels x 8 output channels.
//! let weights = Matrix::from_fn(32, 8, |r, c| ((r * 37 + c * 11) % 19) as i8 - 9);
//!
//! // Optimize the computation order with the READ cluster-then-reorder flow.
//! let optimizer = ReadOptimizer::new(ReadConfig {
//!     criterion: SortCriterion::SignFirst,
//!     clustering: ClusteringMode::ClusterThenReorder,
//!     ..ReadConfig::default()
//! });
//! let schedule = optimizer.optimize(&weights, 4)?;
//! assert_eq!(schedule.clusters().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use accel_sim;
pub use qnn;
pub use read_core;
pub use timing;

/// Commonly used items from all substrate crates.
pub mod prelude {
    pub use accel_sim::{
        im2col, weights_to_matrix, ArrayConfig, ComputeSchedule, ConvShape, Dataflow, GemmProblem,
        MacUnit, Matrix, PsumTraceRecorder, SignFlipStats, SimOptions,
    };
    pub use qnn::{
        Dataset, FaultConfig, Model, QuantParams, SyntheticDatasetBuilder, Tensor,
    };
    pub use read_core::{
        ClusteringMode, LayerSchedule, ReadConfig, ReadOptimizer, SortCriterion,
    };
    pub use timing::{
        ber_from_ter, DelayModel, DynamicTimingAnalyzer, OperatingCondition, TerEstimator,
    };
}
