//! # read-repro — READ: Reliability-Enhanced Accelerator Dataflow Optimization
//!
//! Workspace facade crate: re-exports the substrate crates of the READ
//! reproduction so that examples and downstream users can depend on a single
//! crate.
//!
//! * [`read_pipeline`] — **start here**: the unified [`ReadPipeline`]
//!   builder that composes the whole flow from trait-based stages
//!   (`ScheduleSource` → simulator → `ErrorModel` → `Evaluator`), expands
//!   every run into a typed `WorkPlan` of position-independent work units,
//!   and executes it on a pluggable `Executor` (serial, scoped threads, or
//!   worker subprocesses) with schedule and histogram caching.
//! * [`read_core`] — the READ optimizer (input-channel reordering,
//!   output-channel clustering, schedules, LUT hardware model).
//! * [`accel_sim`] — cycle-level systolic-array simulator (MAC datapath,
//!   dataflows, conv→GEMM lowering).
//! * [`dataflow_sim`] — event-driven dataflow engine: contexts with local
//!   clocks exchanging typed tokens over bounded channels, with Chrome-
//!   trace recording and dynamic-timing reports (stalls, utilization,
//!   buffer occupancy).
//! * [`timing`] — dynamic timing analysis, PVTA variation corners,
//!   timing-error-rate estimation and error injection.
//! * [`qnn`] — quantized (int8) CNN inference substrate with a VGG/ResNet
//!   model zoo, synthetic datasets, and fault-injection evaluation.
//!
//! # Quickstart
//!
//! Build a pipeline once, then run the paper's experiments against it:
//!
//! ```
//! use read_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's comparison set (baseline vs reorder vs
//! // cluster-then-reorder) on the 16x4 output-stationary array, evaluated
//! // at the worst corner, with parallel per-layer execution.
//! let pipeline = ReadPipeline::builder()
//!     .source(Algorithm::Baseline)
//!     .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
//!     .condition(OperatingCondition::aging_vt(10.0, 0.05))
//!     .parallel()
//!     .build()?;
//!
//! // One small synthetic VGG-16 layer.
//! let config = WorkloadConfig { pixels_per_layer: 1, ..Default::default() };
//! let workloads: Vec<_> = vgg16_workloads(&config).into_iter().take(1).collect();
//!
//! // Layer-wise TER (the Fig. 8 experiment shape).
//! let report = pipeline.run_ter("vgg16", &workloads)?;
//! let (geo, _max) = report.ter_reduction("cluster-then-reorder[sign_first]", "baseline");
//! assert!(geo > 1.0, "READ reduces the timing error rate");
//!
//! // Changing the order never changes the layer's outputs.
//! let base = pipeline.layer_outputs(&workloads[0], &Algorithm::Baseline)?;
//! let read = pipeline.layer_outputs(
//!     &workloads[0],
//!     &Algorithm::ClusterThenReorder(SortCriterion::SignFirst),
//! )?;
//! assert_eq!(base, read);
//! # Ok(())
//! # }
//! ```
//!
//! The lower-level crates remain fully usable for custom flows; the
//! [`prelude`] exports the common items from all of them.

#![forbid(unsafe_code)]

pub use accel_sim;
pub use dataflow_sim;
pub use qnn;
pub use read_core;
pub use read_pipeline;
pub use timing;

#[doc(inline)]
pub use read_pipeline::ReadPipeline;

/// Commonly used items from all substrate crates.
pub mod prelude {
    pub use accel_sim::{
        im2col, weights_to_matrix, ArrayConfig, ColumnGroup, ComputeSchedule, ConvShape,
        CycleObserver, Dataflow, GemmProblem, MacUnit, Matrix, NullObserver, PsumTraceRecorder,
        SignFlipStats, SimOptions, SimResult,
    };
    pub use dataflow_sim::{
        run_dataflow, DataflowReport, DataflowRun, EngineConfig, EventError, TraceRecorder,
    };
    pub use qnn::{
        fault::{evaluate, evaluate_topk},
        Accuracy, Dataset, FaultConfig, FlipModel, Model, QuantParams, SyntheticDatasetBuilder,
        Tensor,
    };
    pub use read_core::{
        ClusterSchedule, ClusteringMode, LayerSchedule, ReadConfig, ReadOptimizer, SortCriterion,
    };
    pub use read_pipeline::{
        resnet18_workloads, resnet18_workloads_prefix, resnet34_workloads,
        resnet34_workloads_prefix, vgg16_workloads, vgg16_workloads_prefix,
    };
    pub use read_pipeline::{AccuracyPoint, AccuracyReport};
    pub use read_pipeline::{
        AccuracySpec, CornerSpec, McSpec, ModelFamily, Priority, RequestKind, ServeClient,
        ServeHandle, ServeReply, ServeRequest, ServeServer, ServerConfig, SourceSpec, WorkerConfig,
        WorkerHandle, WorkerServer, NO_TIMEOUT,
    };
    pub use read_pipeline::{
        Aggregator, Algorithm, ArtifactStore, Baseline, CacheStats, DelayErrorModel, DieSpec,
        DiskStore, ErrorModel, Evaluator, Executor, FlakyExecutor, FleetStats, LayerReport,
        LayerWorkload, MemoryStore, MonteCarloErrorModel, MonteCarloSweep, NetworkReport,
        PipelineError, PlanOutput, ReadPipeline, ReadPipelineBuilder, RemoteStore, ScheduleSource,
        SerialExecutor, SocketExecutor, StoreHandle, StoreRequest, StoreServer, StoreStats,
        SubprocessExecutor, SweepCell, SweepPlan, SweepReport, ThreadExecutor, TopKEvaluator,
        UnitLedger, UnitResult, VariationErrorModel, WorkPlan, WorkUnit, WorkloadConfig, WorstCase,
    };
    pub use read_pipeline::{DataflowNetworkReport, DataflowProber, DataflowRow, EventProber};
    pub use timing::{
        ber_from_ter, paper_conditions, AnalyticAnalysis, DelayModel, DepthHistogram,
        DynamicTimingAnalyzer, MonteCarloAnalysis, OperatingCondition, OperatingCorner, PeOffsets,
        TerEstimate, TerEstimator, TimingAnalysis, Variation,
    };
}
